"""netperf: TCP/UDP-style streaming benchmarks (Table 3).

``netperf_send`` saturates the transmit path (flow-controlled by the
driver's queue state and the link's wire pacing); ``netperf_recv``
receives from a remote generator at near line rate; ``netperf_udp_rr``
is the 1-byte-message UDP test the paper ran on E1000.

Durations are virtual seconds.  The paper ran 600 s iterations on real
hardware; the simulator is deterministic, so a few virtual seconds
give exact, stable numbers (configurable for longer runs).
"""

from ..kernel import NETDEV_TX_OK, SkBuff
from ..trace import begin_trace, finish_trace
from .result import WorkloadResult, health_summary_of


def _open_dev(rig):
    dev = rig.netdev()
    if dev is None:
        raise RuntimeError("no network device registered")
    ret = rig.kernel.net.dev_open(dev)
    if ret != 0:
        raise RuntimeError("dev_open failed: %d" % ret)
    # Let autonegotiation and the first watchdog tick finish.
    rig.kernel.run_for_ms(50)
    return dev


def _datapath_start(kernel):
    """Snapshot NAPI/skb-pool counters so a workload can report deltas."""
    snap = kernel.net.napi.snapshot()
    snap["_pools"] = kernel.net.skb_pool_stats()
    return snap


def _datapath_delta(kernel, start):
    snap = kernel.net.napi.snapshot()
    base_hist = start.get("packets_per_poll", {})
    hist = {}
    for bucket, count in snap["packets_per_poll"].items():
        delta = count - base_hist.get(bucket, 0)
        if delta:
            hist[bucket] = delta
    # Pool counters, per shard (the shared pool plus any per-CPU
    # shards), plus the aggregate hit rate over all of them.
    base_pools = start.get("_pools", {})
    hits = misses = 0
    per_pool = {}
    for label, stats in kernel.net.skb_pool_stats().items():
        base = base_pools.get(label, {})
        h = stats["hits"] - base.get("hits", 0)
        m = stats["misses"] - base.get("misses", 0)
        hits += h
        misses += m
        if h or m:
            per_pool[label] = h / (h + m)
    total = hits + misses
    return {
        "polls": snap["polls"] - start["polls"],
        "budget_exhaustions":
            snap["budget_exhaustions"] - start["budget_exhaustions"],
        "pkts_per_poll": hist,
        "pool_hit_rate": (hits / total) if total else 0.0,
        "pool_cpu_hit_rates": per_pool,
    }


def _wait_for_progress(kernel, end_ns, rig=None):
    """Advance to the next event, or fail loudly if there is none.

    A stopped queue with an empty event queue means the device lost its
    TX completion: nothing will ever restart the queue, and silently
    spinning the clock to ``end_ns`` would report it as a (bogus) idle
    run.  Raise instead so the regression is visible.

    Exception: while a supervised recovery is pending the quiesced
    driver legitimately has no TX completion in flight -- the restart
    work item will repopulate the event queue, so wait for it instead
    of reporting a wedge.
    """
    t = kernel.events.peek_time()
    if t is None:
        if rig is not None and rig.recovery_pending():
            kernel.run_for_ms(1)
            return
        raise RuntimeError(
            "netperf: device wedged -- queue stopped with no pending "
            "events to restart it")
    kernel.run_until(min(end_ns, t))


def netperf_send(rig, duration_s=2.0, msg_bytes=1500, trace=None):
    """Saturating send; returns throughput and CPU utilization.

    ``trace`` may be falsy (off), ``True`` (summary only), a path (write
    Chrome-trace JSON there) or an installed :class:`~repro.trace.Tracer`.
    """
    kernel = rig.kernel
    session = begin_trace(kernel, trace)
    dev = _open_dev(rig)
    payload = bytes(msg_bytes)

    x0 = rig.crossings()
    f0 = rig.fault_stats()
    dp0 = _datapath_start(kernel)
    kernel.cpu.start_window()
    start_ns = kernel.clock.now_ns
    end_ns = start_ns + int(duration_s * 1e9)
    sent_packets = 0
    sent_bytes = 0
    lost_packets = 0

    while kernel.clock.now_ns < end_ns:
        if dev.netif_queue_stopped():
            _wait_for_progress(kernel, end_ns, rig)
            continue
        rc = kernel.net.dev_queue_xmit(dev, SkBuff(payload))
        if rc == NETDEV_TX_OK:
            sent_packets += 1
            sent_bytes += msg_bytes
        else:
            if rig.recovery_pending():
                lost_packets += 1
            _wait_for_progress(kernel, end_ns, rig)

    elapsed_s = (kernel.clock.now_ns - start_ns) / 1e9
    f1 = rig.fault_stats()
    ds = rig.deferred_stats()
    dp = _datapath_delta(kernel, dp0)
    result = WorkloadResult(
        name="netperf-send",
        health_summary=health_summary_of(kernel),
        duration_s=elapsed_s,
        bytes_moved=sent_bytes,
        packets=sent_packets,
        throughput_mbps=sent_bytes * 8 / elapsed_s / 1e6,
        cpu_utilization=kernel.cpu.utilization(),
        init_latency_s=(rig.init_latency_ns or 0) / 1e9,
        kernel_user_crossings=rig.crossings(),
        lang_crossings=rig.lang_crossings(),
        deferred_calls=ds["calls"],
        deferred_coalesced=ds["coalesced"],
        deferred_flushes=ds["flushes"],
        decaf_invocations=rig.crossings() - x0,
        napi_polls=dp["polls"],
        napi_budget_exhaustions=dp["budget_exhaustions"],
        napi_pkts_per_poll=dp["pkts_per_poll"],
        skb_pool_hit_rate=dp["pool_hit_rate"],
        skb_pool_cpu_hit_rates=dp["pool_cpu_hit_rates"],
        faults_injected=f1[0] - f0[0],
        recoveries=f1[1] - f0[1],
        packets_lost=lost_packets + (f1[2] - f0[2]),
    )
    finish_trace(session, result)
    kernel.net.dev_close(dev)
    return result


def netperf_recv(rig, duration_s=2.0, msg_bytes=1500, utilization=0.95,
                 sink_extra=None, trace=None, burst=1):
    """Receive from a remote generator at ~line rate.

    ``sink_extra(dev, skb)`` is called for every delivered packet while
    the skb's (possibly pooled, zero-copy) buffer is still valid --
    benchmarks use it to digest payloads without keeping references.
    ``burst`` makes arrivals bursty (k frames back-to-back every k
    intervals) at the same average rate.
    """
    from ..devices import TrafficGenerator

    kernel = rig.kernel
    session = begin_trace(kernel, trace)
    dev = _open_dev(rig)
    generator = TrafficGenerator(kernel, rig.link, frame_bytes=msg_bytes,
                                 utilization=utilization, burst=burst)

    received = [0, 0]  # packets, bytes -- list beats dict in the hot sink

    if sink_extra is None:
        def sink(_dev, skb):
            received[0] += 1
            received[1] += len(skb.data)
    else:
        def sink(_dev, skb):
            received[0] += 1
            received[1] += len(skb.data)
            sink_extra(_dev, skb)

    kernel.net.rx_sink = sink
    x0 = rig.crossings()
    dp0 = _datapath_start(kernel)
    kernel.cpu.start_window()
    start_ns = kernel.clock.now_ns
    generator.start(stop_at_ns=start_ns + int(duration_s * 1e9))
    kernel.run_for_s(duration_s)
    generator.stop()
    # Drain in-flight frames (ITR windows, scheduled polls) so the
    # delivered set is identical whichever interrupt scheme ran.
    kernel.run_for_ms(2)
    elapsed_s = (kernel.clock.now_ns - start_ns) / 1e9

    ds = rig.deferred_stats()
    dp = _datapath_delta(kernel, dp0)
    result = WorkloadResult(
        name="netperf-recv",
        health_summary=health_summary_of(kernel),
        duration_s=elapsed_s,
        bytes_moved=received[1],
        packets=received[0],
        throughput_mbps=received[1] * 8 / elapsed_s / 1e6,
        cpu_utilization=kernel.cpu.utilization(),
        init_latency_s=(rig.init_latency_ns or 0) / 1e9,
        kernel_user_crossings=rig.crossings(),
        lang_crossings=rig.lang_crossings(),
        deferred_calls=ds["calls"],
        deferred_coalesced=ds["coalesced"],
        deferred_flushes=ds["flushes"],
        decaf_invocations=rig.crossings() - x0,
        napi_polls=dp["polls"],
        napi_budget_exhaustions=dp["budget_exhaustions"],
        napi_pkts_per_poll=dp["pkts_per_poll"],
        skb_pool_hit_rate=dp["pool_hit_rate"],
        skb_pool_cpu_hit_rates=dp["pool_cpu_hit_rates"],
    )
    finish_trace(session, result)
    kernel.net.rx_sink = None
    kernel.net.dev_close(dev)
    return result


def netperf_udp_rr(rig, duration_s=1.0, msg_bytes=1, trace=None):
    """UDP request/response with 1-byte messages (E1000, section 4.2).

    Each round trip sends a tiny frame and receives the echo the link
    peer reflects back.
    """
    kernel = rig.kernel
    session = begin_trace(kernel, trace)
    dev = _open_dev(rig)

    # Remote host: echo every received frame back after a short RTT.
    def echo(frame):
        kernel.events.schedule_after(
            30_000, lambda: rig.link.inject(frame), name="udp-echo"
        )

    rig.link.peer_rx = echo

    responses = {"count": 0}

    def sink(_dev, skb):
        responses["count"] += 1

    kernel.net.rx_sink = sink
    # Minimum Ethernet payload still makes a 60-byte frame on the wire.
    payload = bytes(max(60, msg_bytes))

    x0 = rig.crossings()
    dp0 = _datapath_start(kernel)
    kernel.cpu.start_window()
    start_ns = kernel.clock.now_ns
    end_ns = start_ns + int(duration_s * 1e9)
    sent = 0
    while kernel.clock.now_ns < end_ns:
        before = responses["count"]
        if kernel.net.dev_queue_xmit(dev, SkBuff(payload)) == NETDEV_TX_OK:
            sent += 1
        # Wait for the echo (request/response semantics).
        while responses["count"] == before:
            t = kernel.events.peek_time()
            if t is None or t > end_ns:
                break
            kernel.run_until(t)
        else:
            continue
        if responses["count"] == before:
            break

    elapsed_s = (kernel.clock.now_ns - start_ns) / 1e9
    ds = rig.deferred_stats()
    dp = _datapath_delta(kernel, dp0)
    result = WorkloadResult(
        name="netperf-udp-rr",
        health_summary=health_summary_of(kernel),
        duration_s=elapsed_s,
        bytes_moved=sent * len(payload),
        packets=sent,
        throughput_mbps=responses["count"] / elapsed_s / 1000.0,  # kTPS
        cpu_utilization=kernel.cpu.utilization(),
        init_latency_s=(rig.init_latency_ns or 0) / 1e9,
        kernel_user_crossings=rig.crossings(),
        lang_crossings=rig.lang_crossings(),
        deferred_calls=ds["calls"],
        deferred_coalesced=ds["coalesced"],
        deferred_flushes=ds["flushes"],
        decaf_invocations=rig.crossings() - x0,
        napi_polls=dp["polls"],
        napi_budget_exhaustions=dp["budget_exhaustions"],
        napi_pkts_per_poll=dp["pkts_per_poll"],
        skb_pool_hit_rate=dp["pool_hit_rate"],
        skb_pool_cpu_hit_rates=dp["pool_cpu_hit_rates"],
        extra={"transactions": responses["count"]},
    )
    finish_trace(session, result)
    kernel.net.rx_sink = None
    rig.link.peer_rx = None
    kernel.net.dev_close(dev)
    return result
