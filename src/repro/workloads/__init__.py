"""Workloads: the paper's Table 3 benchmarks in virtual time.

* :mod:`repro.workloads.rigs` -- builders that assemble kernel +
  device + driver (native or decaf) test rigs for each of the five
  drivers;
* :mod:`repro.workloads.netperf` -- TCP/UDP-style send and receive
  streams for the network drivers;
* :mod:`repro.workloads.mpg123` -- 256 Kbps MP3 playback for ens1371;
* :mod:`repro.workloads.tar_usb` -- untar onto the USB flash disk;
* :mod:`repro.workloads.mouse` -- 30 s of move-and-click input.

Every workload returns a :class:`WorkloadResult` with throughput, CPU
utilization, and the decaf-invocation/crossing counters Table 3
reports.
"""

from .result import WorkloadResult
from .rigs import (
    Rig,
    make_8139too_rig,
    make_e1000_rig,
    make_ens1371_rig,
    make_psmouse_rig,
    make_uhci_rig,
)
from .netperf import netperf_recv, netperf_send, netperf_udp_rr
from .mpg123 import mpg123_play
from .tar_usb import tar_to_flash
from .mouse import move_and_click

__all__ = [
    "WorkloadResult",
    "Rig",
    "make_8139too_rig",
    "make_e1000_rig",
    "make_ens1371_rig",
    "make_uhci_rig",
    "make_psmouse_rig",
    "netperf_send",
    "netperf_recv",
    "netperf_udp_rr",
    "mpg123_play",
    "tar_to_flash",
    "move_and_click",
]
