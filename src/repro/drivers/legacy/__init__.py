"""Legacy drivers: the C-idiomatic inputs to DriverSlicer.

Each module mirrors the structure of its Linux 2.6.18 counterpart:
module-level functions with the original names, integer errno returns,
manual cleanup chains, and DriverSlicer marshaling annotations on the
shared data structures.  ``linux`` is a module global bound at insmod
time -- the "included kernel headers".
"""
