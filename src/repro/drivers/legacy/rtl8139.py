"""8139too: RealTek RTL8139 fast ethernet driver (legacy, C-idiomatic).

Mirrors drivers/net/8139too.c from Linux 2.6.18: port-I/O programmed,
four transmit slots, single receive ring, integer errno returns and
manual unwind chains.  This is the *input* to DriverSlicer; the decaf
conversion lives in :mod:`repro.drivers.decaf.rtl8139`.
"""

import struct as _pystruct

from ...core.cstruct import CStruct, Exp, Opaque, Ptr, Str, U8, U16, U32, I32

# Precompiled rx header codec: status(2) size(2), little-endian.
_RX_HDR = _pystruct.Struct("<HH")

# Bound at insmod time ("the kernel headers").
linux = None

DRV_NAME = "8139too"
DRV_VERSION = "0.9.27"

RTL8139_VENDOR_ID = 0x10EC
RTL8139_DEVICE_ID = 0x8139

# Register offsets (subset of the real driver's enum).
IDR0 = 0x00
MAR0 = 0x08
TSD0 = 0x10
TSAD0 = 0x20
RBSTART = 0x30
CR = 0x37
CAPR = 0x38
CBR = 0x3A
IMR = 0x3C
ISR = 0x3E
TCR = 0x40
RCR = 0x44
MPC = 0x4C
CFG9346 = 0x50
CONFIG1 = 0x52
MSR = 0x58
BMCR = 0x62
BMSR = 0x64

# CR bits.
CR_BUFE = 0x01
CR_TE = 0x04
CR_RE = 0x08
CR_RST = 0x10

# Interrupt bits.
ISR_ROK = 0x0001
ISR_RER = 0x0002
ISR_TOK = 0x0004
ISR_TER = 0x0008
ISR_RXOVW = 0x0010
INT_MASK = ISR_ROK | ISR_RER | ISR_TOK | ISR_TER | ISR_RXOVW
RX_INT_MASK = ISR_ROK | ISR_RER | ISR_RXOVW

# Interrupt mode: True = NAPI polling (the default), False = the original
# per-packet interrupt path, kept selectable for the datapath ablation.
napi_mode = True
RTL8139_NAPI_WEIGHT = 64

# Loop mode: True = per-ring compiled rx closures (pre-bound register
# accessors, pooled alloc/recycle and batched stats resolved once at
# hw_start), False = the interpreted loop kept as the measured ablation
# baseline.  Byte-identical behaviour either way.
compiled_mode = True


def set_napi_mode(enabled):
    global napi_mode
    napi_mode = bool(enabled)


def set_compiled_mode(enabled):
    global compiled_mode
    compiled_mode = bool(enabled)

# TSD bits.
TSD_OWN = 1 << 13
TSD_TOK = 1 << 15

RX_STAT_ROK = 0x0001

NUM_TX_DESC = 4
TX_BUF_SIZE = 1536
RX_BUF_LEN = 32 * 1024
RX_RING_SIZE = RX_BUF_LEN
ETH_ZLEN = 60

MSR_LINKB = 0x04


class rtl8139_stats(CStruct):
    """Mirror of the private slice of net_device_stats the driver keeps."""

    FIELDS = [
        ("tx_packets", U32),
        ("tx_bytes", U32),
        ("tx_errors", U32),
        ("rx_packets", U32),
        ("rx_bytes", U32),
        ("rx_errors", U32),
        ("rx_dropped", U32),
    ]


class rtl8139_private(CStruct):
    """struct rtl8139_private from the original driver.

    Annotations mark how pointers marshal across the split
    (section 3.2): the PCI device and DMA handles are kernel-opaque,
    the MAC address array carries an exp() length.
    """

    FIELDS = [
        ("pdev", Ptr("rtl8139_private"), Opaque()),
        ("ioaddr", U32),
        ("irq", U32),
        ("mac_addr", Ptr(U8), Exp("ETH_ALEN")),
        ("cur_tx", U32),
        ("dirty_tx", U32),
        ("cur_rx", U32),
        ("tx_flag", U32),
        ("msg_enable", I32),
        ("media", U16),
        ("chipset_name", Str(16)),
        ("stats", Ptr(rtl8139_stats)),
        ("have_thread", U8),
    ]


class rtl8139_driver_state:
    """Non-marshaled runtime state (locks, DMA regions, netdev)."""

    def __init__(self):
        self.netdev = None
        self.tp = None
        self.lock = None
        self.rx_ring_dma = None
        self.tx_bufs_dma = None
        self.thread_timer = None
        self.device_model = None  # test visibility only
        self.napi = None
        # Compiled NAPI poll + interrupt closures; None = interpreted.
        self.compiled_poll = None
        self.compiled_intr = None


# One active instance, as the bench uses one NIC (the real driver keeps
# its state in netdev->priv; we do too, plus this for module teardown).
_state = rtl8139_driver_state()


# ---------------------------------------------------------------------------
# Hardware access helpers
# ---------------------------------------------------------------------------

def RTL_R8(tp, reg):
    return linux.inb(tp.ioaddr + reg)


def RTL_R16(tp, reg):
    return linux.inw(tp.ioaddr + reg)


def RTL_R32(tp, reg):
    return linux.inl(tp.ioaddr + reg)


def RTL_W8(tp, reg, val):
    linux.outb(val, tp.ioaddr + reg)


def RTL_W16(tp, reg, val):
    linux.outw(val, tp.ioaddr + reg)


def RTL_W32(tp, reg, val):
    linux.outl(val, tp.ioaddr + reg)


# ---------------------------------------------------------------------------
# Chip bring-up
# ---------------------------------------------------------------------------

def rtl8139_chip_reset(tp):
    """Soft-reset the chip; poll until the reset bit clears."""
    RTL_W8(tp, CR, CR_RST)
    for _i in range(1000):
        if not RTL_R8(tp, CR) & CR_RST:
            return 0
        linux.udelay(10)
    return -linux.EIO


def read_mac_address(tp):
    mac = []
    for i in range(6):
        mac.append(linux.inb(tp.ioaddr + IDR0 + i))
    tp.mac_addr = mac
    return 0


def rtl8139_init_board(pdev, tp):
    """PCI bring-up: enable, map I/O, reset.  Returns 0 or -errno."""
    rc = linux.pci_enable_device(pdev)
    if rc:
        return rc
    rc = linux.pci_request_regions(pdev, DRV_NAME)
    if rc:
        linux.pci_disable_device(pdev)
        return rc
    linux.pci_set_master(pdev)
    tp.ioaddr = linux.pci_resource_start(pdev, 0)
    tp.irq = pdev.irq
    rc = rtl8139_chip_reset(tp)
    if rc:
        linux.pci_release_regions(pdev)
        linux.pci_disable_device(pdev)
        return rc
    tp.chipset_name = "RTL-8139"
    return 0


def rtl8139_init_one(pdev):
    """probe(): called by the PCI core for each matching function."""
    dev = linux.alloc_etherdev("eth%d")
    tp = rtl8139_private()
    tp.msg_enable = 7
    tp.tx_flag = 0
    tp.stats = rtl8139_stats()

    rc = rtl8139_init_board(pdev, tp)
    if rc:
        return rc

    rc = read_mac_address(tp)
    if rc:
        linux.pci_release_regions(pdev)
        linux.pci_disable_device(pdev)
        return rc

    dev.dev_addr = bytes(tp.mac_addr)
    dev.priv = tp
    dev.open = rtl8139_open
    dev.stop = rtl8139_close
    dev.hard_start_xmit = rtl8139_start_xmit
    dev.get_stats = rtl8139_get_stats
    dev.set_multicast_list = rtl8139_set_rx_mode
    dev.set_mac_address = rtl8139_set_mac_address
    dev.tx_timeout = rtl8139_tx_timeout
    dev.irq = tp.irq
    dev.base_addr = tp.ioaddr

    rc = linux.register_netdev(dev)
    if rc:
        linux.pci_release_regions(pdev)
        linux.pci_disable_device(pdev)
        return rc

    _state.netdev = dev
    _state.tp = tp
    _state.lock = linux.spin_lock_init("rtl8139")
    linux.printk("%s: %s at %#x, irq %d" % (dev.name, tp.chipset_name,
                                            tp.ioaddr, tp.irq))
    return 0


def rtl8139_remove_one(pdev):
    dev = _state.netdev
    if dev is None:
        return
    linux.unregister_netdev(dev)
    linux.pci_release_regions(pdev)
    linux.pci_disable_device(pdev)
    _state.netdev = None
    _state.tp = None


# ---------------------------------------------------------------------------
# Open / close
# ---------------------------------------------------------------------------

def rtl8139_open(dev):
    tp = dev.priv
    rc = linux.request_irq(tp.irq, rtl8139_interrupt, DRV_NAME, dev)
    if rc:
        return rc

    _state.rx_ring_dma = linux.dma_alloc_coherent(RX_BUF_LEN + 16,
                                                  owner=DRV_NAME)
    _state.tx_bufs_dma = linux.dma_alloc_coherent(TX_BUF_SIZE * NUM_TX_DESC,
                                                  owner=DRV_NAME)
    if _state.rx_ring_dma is None or _state.tx_bufs_dma is None:
        rtl8139_free_rings()
        linux.free_irq(tp.irq, dev)
        return -linux.ENOMEM

    tp.tx_flag = 0
    rtl8139_init_ring(dev)
    rtl8139_hw_start(dev)
    rtl8139_start_thread(tp)
    return 0


def rtl8139_free_rings():
    if _state.rx_ring_dma is not None:
        linux.dma_free_coherent(_state.rx_ring_dma)
        _state.rx_ring_dma = None
    if _state.tx_bufs_dma is not None:
        linux.dma_free_coherent(_state.tx_bufs_dma)
        _state.tx_bufs_dma = None


def rtl8139_init_ring(dev):
    tp = dev.priv
    tp.cur_rx = 0
    tp.cur_tx = 0
    tp.dirty_tx = 0
    return 0


def rtl8139_napi_up(dev):
    """Create/enable the NAPI context (shared with the decaf nucleus).

    Idempotent: tx_timeout recovery re-runs hw_start on a live NAPI.
    """
    if not napi_mode:
        return
    if _state.napi is None:
        _state.napi = linux.netif_napi_add(dev, rtl8139_poll,
                                           weight=RTL8139_NAPI_WEIGHT)
    linux.napi_enable(_state.napi)


def rtl8139_napi_del():
    if _state.napi is not None:
        linux.napi_disable(_state.napi)
        _state.napi = None


def rtl8139_hw_start(dev):
    """Program the chip to its running configuration."""
    tp = dev.priv
    rtl8139_chip_reset(tp)
    RTL_W8(tp, CFG9346, 0xC0)  # unlock config registers
    RTL_W32(tp, RBSTART, _state.rx_ring_dma.dma_addr)
    RTL_W32(tp, RCR, 0x0000070A)
    RTL_W32(tp, TCR, 0x03000700)
    rtl8139_set_rx_mode(dev)
    RTL_W8(tp, CFG9346, 0x00)  # lock config registers
    RTL_W8(tp, CR, CR_RE | CR_TE)
    rtl8139_napi_up(dev)
    # (Re)compile the rx fast path against the freshly programmed ring.
    # hw_start re-runs on tx_timeout / rx_err recovery, so stale
    # bindings (a replaced register file after chip reset) never leak
    # into a later poll.
    if compiled_mode and napi_mode:
        _state.compiled_poll, _state.compiled_intr = \
            _build_compiled_fastpath(dev, tp)
    else:
        _state.compiled_poll = None
        _state.compiled_intr = None
    RTL_W16(tp, IMR, INT_MASK)
    linux.netif_start_queue(dev)
    dev.netif_carrier_on()
    return 0


def rtl8139_close(dev):
    tp = dev.priv
    _state.compiled_poll = None  # rings are about to be freed
    _state.compiled_intr = None
    linux.netif_stop_queue(dev)
    RTL_W16(tp, IMR, 0)
    RTL_W8(tp, CR, 0)
    rtl8139_stop_thread(tp)
    # NAPI must be gone (and the IRQ line unmasked) before free_irq:
    # free_irq does not reset the line's disable depth.
    rtl8139_napi_del()
    linux.free_irq(tp.irq, dev)
    rtl8139_tx_clear(tp)
    rtl8139_free_rings()
    return 0


# ---------------------------------------------------------------------------
# Transmit
# ---------------------------------------------------------------------------

def rtl8139_start_xmit(skb, dev):
    tp = dev.priv
    entry = tp.cur_tx % NUM_TX_DESC

    length = len(skb)
    if length > TX_BUF_SIZE:
        tp.stats.tx_errors += 1
        return linux.NETDEV_TX_OK  # drop oversized, as the real driver

    # Copy the frame into the static transmit buffer for this slot.
    buf_off = entry * TX_BUF_SIZE
    _state.tx_bufs_dma.data[buf_off:buf_off + length] = skb.data
    pad = max(0, ETH_ZLEN - length)
    if pad:
        _state.tx_bufs_dma.data[buf_off + length:buf_off + length + pad] = bytes(pad)

    linux.spin_lock_irqsave(_state.lock)
    RTL_W32(tp, TSAD0 + entry * 4, _state.tx_bufs_dma.dma_addr + buf_off)
    RTL_W32(tp, TSD0 + entry * 4, tp.tx_flag | max(length, ETH_ZLEN))
    tp.cur_tx += 1
    if tp.cur_tx - tp.dirty_tx >= NUM_TX_DESC:
        linux.netif_stop_queue(dev)
    linux.spin_unlock_irqrestore(_state.lock)

    tp.stats.tx_packets += 1
    tp.stats.tx_bytes += length
    dev.stats.tx_packets += 1
    dev.stats.tx_bytes += length
    return linux.NETDEV_TX_OK


def rtl8139_tx_interrupt(dev, tp):
    dirty_tx = tp.dirty_tx
    while tp.cur_tx - dirty_tx > 0:
        entry = dirty_tx % NUM_TX_DESC
        txstatus = RTL_R32(tp, TSD0 + entry * 4)
        if not txstatus & (TSD_TOK | TSD_OWN):
            break  # still in flight
        if not txstatus & TSD_TOK:
            tp.stats.tx_errors += 1
            dev.stats.tx_errors += 1
        dirty_tx += 1
    if tp.dirty_tx != dirty_tx:
        tp.dirty_tx = dirty_tx
        if linux.netif_queue_stopped(dev):
            linux.netif_wake_queue(dev)


def rtl8139_tx_clear(tp):
    tp.cur_tx = 0
    tp.dirty_tx = 0


def rtl8139_tx_timeout(dev):
    tp = dev.priv
    tp.stats.tx_errors += 1
    rtl8139_chip_reset(tp)
    rtl8139_hw_start(dev)


# ---------------------------------------------------------------------------
# Receive
# ---------------------------------------------------------------------------

def rtl8139_rx(dev, tp, budget=None):
    """Drain the receive ring; at most ``budget`` packets under NAPI.

    The per-packet-interrupt path (``budget is None``) copies each frame
    into a fresh skb via ``netif_rx``, exactly as the original driver;
    the NAPI path copies into a pooled zero-copy skb and delivers
    through ``netif_receive_skb``.
    """
    import struct as _pystruct

    ring = _state.rx_ring_dma.data
    napi_path = budget is not None and napi_mode
    if napi_path:
        ring_view = memoryview(ring)
    received = 0
    while not RTL_R8(tp, CR) & CR_BUFE:
        if budget is not None and received >= budget:
            break
        offset = tp.cur_rx % RX_RING_SIZE
        rx_status, rx_size = _pystruct.unpack_from("<HH", ring, offset)
        if not rx_status & RX_STAT_ROK:
            rtl8139_rx_err(rx_status, dev, tp)
            break
        pkt_size = rx_size - 4
        if napi_path:
            skb = linux.napi_alloc_skb(pkt_size)
            first = min(pkt_size, RX_RING_SIZE - (offset + 4))
            skb.data[0:first] = ring_view[offset + 4:offset + 4 + first]
            if first < pkt_size:
                # Wrapped packet: second copy from the ring start.
                skb.data[first:pkt_size] = ring_view[0:pkt_size - first]
            linux.netif_receive_skb(dev, skb)
        else:
            # Wrap where the device does (RX_RING_SIZE), not at the end
            # of the slack-padded DMA buffer.
            end = min(offset + 4 + pkt_size, RX_RING_SIZE)
            frame = bytes(ring[offset + 4:end])
            if len(frame) < pkt_size:
                # Wrapped packet: reassemble across the ring boundary.
                rest = pkt_size - len(frame)
                frame += bytes(ring[0:rest])
            skb = linux.skb_from_data(frame)
            linux.netif_rx(dev, skb)
        tp.stats.rx_packets += 1
        tp.stats.rx_bytes += pkt_size
        dev.stats.rx_packets += 1
        dev.stats.rx_bytes += pkt_size
        received += 1
        tp.cur_rx = (offset + 4 + rx_size + 3) & ~3
        RTL_W16(tp, CAPR, (tp.cur_rx - 16) & 0xFFFF)
    return received


def rtl8139_rx_err(rx_status, dev, tp):
    tp.stats.rx_errors += 1
    dev.stats.rx_errors += 1
    rtl8139_chip_reset(tp)
    rtl8139_hw_start(dev)


# ---------------------------------------------------------------------------
# Interrupt handler
# ---------------------------------------------------------------------------

def rtl8139_interrupt(irq, dev_id):
    fast = _state.compiled_intr
    if fast is not None:
        return fast(dev_id)
    dev = dev_id
    tp = dev.priv
    status = RTL_R16(tp, ISR)
    if status == 0:
        return linux.IRQ_NONE
    RTL_W16(tp, ISR, status)  # ack (write-1-to-clear)
    if status & RX_INT_MASK:
        if napi_mode and _state.napi is not None:
            # NAPI: mask receive interrupts and punt ring drain to the
            # softirq poll; rtl8139_poll restores IMR on completion.
            RTL_W16(tp, IMR, INT_MASK & ~RX_INT_MASK)
            linux.napi_schedule(_state.napi)
        else:
            rtl8139_rx(dev, tp)
    if status & (ISR_TOK | ISR_TER):
        rtl8139_tx_interrupt(dev, tp)
    return linux.IRQ_HANDLED


def rtl8139_poll(napi, budget):
    """NAPI poll: budgeted ring drain in softirq context."""
    fast = _state.compiled_poll
    if fast is not None:
        return fast(napi, budget)
    dev = _state.netdev
    tp = dev.priv
    work_done = rtl8139_rx(dev, tp, budget)
    if work_done < budget:
        linux.napi_complete(napi)
        RTL_W16(tp, IMR, INT_MASK)
        # Unlike the e1000's ICR/IMS latch, this chip only interrupts on
        # new frame arrival: a frame that landed mid-poll would strand
        # until the next one, so re-check the ring and re-schedule.
        if not RTL_R8(tp, CR) & CR_BUFE:
            RTL_W16(tp, IMR, INT_MASK & ~RX_INT_MASK)
            linux.napi_schedule(napi)
    return work_done


def _build_compiled_fastpath(dev, tp):
    """Compile this ring's NAPI poll + interrupt pair (the loop compiler).

    Everything the interpreted ``rtl8139_rx`` + ``rtl8139_poll`` pair
    resolves per packet is resolved here, once, at hw_start: the CR /
    CAPR / IMR / ISR accessor chains (region lookup, device handler,
    cost charge -- see :mod:`repro.kernel.fastpath`), the precompiled
    rx header codec, the ring view, the pooled-skb free list, and the
    stats objects.  Counter bumps (driver stats, pool hits/recycles,
    stack batch totals) accumulate in locals and are written back once
    per drain; the device-visible access sequence -- one CR read per
    iteration, one CAPR write per packet, the IMR restore / ring
    re-check on completion -- is byte-identical to the interpreted
    loop, as is the error path (flush, then ``rtl8139_rx_err``).
    """
    from ...kernel.fastpath import FastIo, _FAR
    from ...kernel.netdev import SkBuff

    kernel = linux.kernel
    net = kernel.net
    fio = FastIo(kernel, is_mmio=False)
    ioaddr = tp.ioaddr
    read_cr = fio.reader(ioaddr + CR, 1)
    write_capr = fio.writer(ioaddr + CAPR, 2)
    write_imr = fio.writer(ioaddr + IMR, 2)
    read_isr = fio.reader(ioaddr + ISR, 2)
    write_isr = fio.writer(ioaddr + ISR, 2)
    flush_io = fio.flush
    ring = _state.rx_ring_dma.data
    ring_view = memoryview(ring)
    unpack_hdr = _RX_HDR.unpack_from
    stats = tp.stats
    dev_stats = dev.stats
    napi_complete = linux.napi_complete
    napi_schedule = linux.napi_schedule
    smp = kernel.nr_cpus > 1
    shared_pool = None if smp else net.get_skb_pool()
    imr_no_rx = INT_MASK & ~RX_INT_MASK

    def poll(napi, budget):
        pool = (net.get_skb_pool(kernel.current_cpu.index) if smp
                else shared_pool)
        free = pool._free
        skbs = pool._skbs
        arena = pool._arena
        buf_size = pool.buf_size
        pool_alloc = pool.alloc
        sink = net.rx_sink
        cur_rx = tp.cur_rx
        received = 0
        rx_bytes = 0
        hits = 0
        recycles = 0
        err_status = None
        while True:
            if read_cr() & CR_BUFE:
                break
            if received >= budget:
                break
            # cur_rx < 2*RX_RING_SIZE always (one alignment step past
            # the wrap at most), so the modulo is a single compare.
            offset = cur_rx - RX_RING_SIZE if cur_rx >= RX_RING_SIZE \
                else cur_rx
            rx_status, rx_size = unpack_hdr(ring, offset)
            if not rx_status & RX_STAT_ROK:
                err_status = rx_status
                break
            pkt_size = rx_size - 4
            # Inlined SkbPool.alloc hit path; the pool handles the rest.
            if free and pkt_size <= buf_size:
                slot = free.popleft()
                hits += 1
                skb = skbs[slot]
                if skb is None or len(skb.data) != pkt_size:
                    base = slot * buf_size
                    skb = SkBuff(arena[base:base + pkt_size], 0x0800)
                    skbs[slot] = skb
                else:
                    skb.protocol = 0x0800
                skb._pool = pool
                skb._slot = slot
            else:
                skb = pool_alloc(pkt_size)
            data = skb.data
            first = RX_RING_SIZE - (offset + 4)
            if first >= pkt_size:
                data[0:pkt_size] = \
                    ring_view[offset + 4:offset + 4 + pkt_size]
            else:
                # Wrapped packet: second copy from the ring start.
                data[0:first] = ring_view[offset + 4:offset + 4 + first]
                data[first:pkt_size] = ring_view[0:pkt_size - first]
            # Inlined netif_receive_skb; stack charge still lands via
            # flush_rx_batch after the poll returns.
            skb.dev = dev
            if sink is not None:
                sink(dev, skb)
            pool_of_skb = skb._pool
            if pool_of_skb is not None:
                skb._pool = None
                skb.dev = None  # no stale device ref in the slot cache
                if pool_of_skb is pool:
                    recycles += 1
                    free.append(skb._slot)
                else:
                    pool_of_skb.recycles += 1
                    pool_of_skb._free.append(skb._slot)
                skb._slot = -1
            received += 1
            rx_bytes += pkt_size
            cur_rx = (offset + 4 + rx_size + 3) & ~3
            write_capr((cur_rx - 16) & 0xFFFF)
        tp.cur_rx = cur_rx
        if received:
            stats.rx_packets += received
            stats.rx_bytes += rx_bytes
            dev_stats.rx_packets += received
            dev_stats.rx_bytes += rx_bytes
            net._rx_batch_packets += received
            net._rx_batch_bytes += rx_bytes
            pool.hits += hits
            pool.recycles += recycles
        flush_io()
        if err_status is not None:
            # Chip reset + hw_start; rebuilds _state.compiled_poll, but
            # this closure's bindings stay valid for the tail below.
            rtl8139_rx_err(err_status, dev, tp)
        if received < budget:
            napi_complete(napi)
            write_imr(INT_MASK)
            if not read_cr() & CR_BUFE:
                write_imr(imr_no_rx)
                napi_schedule(napi)
            flush_io()
        return received

    if not smp:
        # Single-CPU "descriptor run" variant: the two per-packet
        # accessors (CR read, CAPR write) are inlined into the loop
        # body -- no closure call, pending charge in plain locals --
        # and the rx header decodes as byte arithmetic.  Observably
        # identical to the closure variant above (which remains the
        # SMP path, where accesses must route through the CPU-targeted
        # deferral branch).
        from ...kernel.fastpath import _heappop

        io = kernel.io
        clock = kernel.clock
        events = kernel.events
        heap = events._heap
        wheel = events._wheel
        wheel_peek = wheel.peek_event
        memo = events.next_due_memo
        consume = kernel.consume
        wedged = io._wedged
        charge_cpu = kernel.cpu.charge
        charge_acct = kernel.current_cpu.acct.charge
        c_io = kernel.costs.port_io_ns
        cr_addr = ioaddr + CR
        capr_addr = ioaddr + CAPR
        region = io._find(cr_addr, 1, False)
        handler = region.handler
        rname = region.name
        cr_off = cr_addr - region.base
        capr_off = capr_addr - region.base
        mk_r = getattr(handler, "reg_reader", None)
        dev_read_cr = mk_r(cr_off, 1) if mk_r is not None else None
        if dev_read_cr is None:
            dev_read_cr = lambda: handler.read(cr_off, 1) & 0xFF  # noqa: E731
        mk_w = getattr(handler, "reg_writer", None)
        dev_write_capr = mk_w(capr_off, 2) if mk_w is not None else None
        if dev_write_capr is None:
            dev_write_capr = \
                lambda v: handler.write(capr_off, v, 2)  # noqa: E731
        pool = shared_pool
        p_free = pool._free
        p_skbs = pool._skbs
        p_arena = pool._arena
        p_buf_size = pool.buf_size
        p_alloc = pool.alloc

        def poll_fast(napi, budget):
            sink = net.rx_sink
            cur_rx = tp.cur_rx
            received = 0
            rx_bytes = 0
            hits = 0
            recycles = 0
            err_status = None
            pend_ns = 0
            pend_n = 0
            while True:
                # -- CR read: inlined compiled accessor --
                pend_n += 1
                target = clock._now_ns + c_io
                if target < memo[0]:
                    clock._now_ns = target
                    pend_ns += c_io
                else:
                    nxt = _FAR
                    while heap:
                        head = heap[0]
                        if head.cancelled:
                            _heappop(heap)
                            continue
                        nxt = head.time_ns
                        break
                    if wheel._live:
                        front = wheel._front
                        if front is None or front.wheel is not wheel:
                            front = wheel_peek()
                        if front is not None and front.time_ns < nxt:
                            nxt = front.time_ns
                    if nxt <= target:
                        io.port_accesses += pend_n
                        pend_n = 0
                        if pend_ns:
                            charge_cpu(pend_ns, "io")
                            charge_acct(pend_ns, "io")
                            pend_ns = 0
                        consume(c_io, True, "io")
                    else:
                        memo[0] = nxt
                        clock._now_ns = target
                        pend_ns += c_io
                if wedged and cr_addr in wedged:
                    cr = wedged[cr_addr] & 0xFF
                else:
                    cr = dev_read_cr()
                    tap = io.trace_tap
                    if tap is not None:
                        tap("r", rname, cr_off, 1, cr)
                if cr & CR_BUFE:
                    break
                if received >= budget:
                    break
                offset = cur_rx - RX_RING_SIZE if cur_rx >= RX_RING_SIZE \
                    else cur_rx
                rx_status = ring[offset] | ring[offset + 1] << 8
                if not rx_status & RX_STAT_ROK:
                    err_status = rx_status
                    break
                rx_size = ring[offset + 2] | ring[offset + 3] << 8
                pkt_size = rx_size - 4
                # Inlined SkbPool.alloc hit path.
                if p_free and pkt_size <= p_buf_size:
                    slot = p_free.popleft()
                    hits += 1
                    skb = p_skbs[slot]
                    if skb is None or len(skb.data) != pkt_size:
                        base = slot * p_buf_size
                        skb = SkBuff(p_arena[base:base + pkt_size], 0x0800)
                        p_skbs[slot] = skb
                    else:
                        skb.protocol = 0x0800
                    skb._pool = pool
                    skb._slot = slot
                else:
                    skb = p_alloc(pkt_size)
                data = skb.data
                first = RX_RING_SIZE - (offset + 4)
                if first >= pkt_size:
                    data[0:pkt_size] = \
                        ring_view[offset + 4:offset + 4 + pkt_size]
                else:
                    data[0:first] = ring_view[offset + 4:offset + 4 + first]
                    data[first:pkt_size] = ring_view[0:pkt_size - first]
                # Inlined netif_receive_skb.
                skb.dev = dev
                if sink is not None:
                    sink(dev, skb)
                pool_of_skb = skb._pool
                if pool_of_skb is not None:
                    skb._pool = None
                    skb.dev = None  # no stale device ref in the slot cache
                    if pool_of_skb is pool:
                        recycles += 1
                        p_free.append(skb._slot)
                    else:
                        pool_of_skb.recycles += 1
                        pool_of_skb._free.append(skb._slot)
                    skb._slot = -1
                received += 1
                rx_bytes += pkt_size
                cur_rx = (offset + 4 + rx_size + 3) & ~3
                value = (cur_rx - 16) & 0xFFFF
                # -- CAPR write: inlined compiled accessor --
                pend_n += 1
                target = clock._now_ns + c_io
                if target < memo[0]:
                    clock._now_ns = target
                    pend_ns += c_io
                else:
                    nxt = _FAR
                    while heap:
                        head = heap[0]
                        if head.cancelled:
                            _heappop(heap)
                            continue
                        nxt = head.time_ns
                        break
                    if wheel._live:
                        front = wheel._front
                        if front is None or front.wheel is not wheel:
                            front = wheel_peek()
                        if front is not None and front.time_ns < nxt:
                            nxt = front.time_ns
                    if nxt <= target:
                        io.port_accesses += pend_n
                        pend_n = 0
                        if pend_ns:
                            charge_cpu(pend_ns, "io")
                            charge_acct(pend_ns, "io")
                            pend_ns = 0
                        consume(c_io, True, "io")
                    else:
                        memo[0] = nxt
                        clock._now_ns = target
                        pend_ns += c_io
                if not (wedged and capr_addr in wedged):
                    tap = io.trace_tap
                    if tap is not None:
                        tap("w", rname, capr_off, 2, value)
                    dev_write_capr(value)
            tp.cur_rx = cur_rx
            if received:
                stats.rx_packets += received
                stats.rx_bytes += rx_bytes
                dev_stats.rx_packets += received
                dev_stats.rx_bytes += rx_bytes
                net._rx_batch_packets += received
                net._rx_batch_bytes += rx_bytes
                pool.hits += hits
                pool.recycles += recycles
            if pend_n:
                io.port_accesses += pend_n
            if pend_ns:
                charge_cpu(pend_ns, "io")
                charge_acct(pend_ns, "io")
            flush_io()
            if err_status is not None:
                rtl8139_rx_err(err_status, dev, tp)
            if received < budget:
                napi_complete(napi)
                write_imr(INT_MASK)
                if not read_cr() & CR_BUFE:
                    write_imr(imr_no_rx)
                    napi_schedule(napi)
                flush_io()
            return received

        poll = poll_fast

    IRQ_NONE = linux.IRQ_NONE
    IRQ_HANDLED = linux.IRQ_HANDLED

    def intr(dev_id):
        # Compiled rtl8139_interrupt: same access sequence (ISR read,
        # w1c ack, IMR mask) through the pre-bound accessors.
        status = read_isr()
        if status == 0:
            flush_io()
            return IRQ_NONE
        write_isr(status)
        if status & RX_INT_MASK:
            if _state.napi is not None:
                write_imr(imr_no_rx)
                napi_schedule(_state.napi)
            else:
                rtl8139_rx(dev, tp)
        if status & (ISR_TOK | ISR_TER):
            rtl8139_tx_interrupt(dev, tp)
        flush_io()
        return IRQ_HANDLED

    return poll, intr


# ---------------------------------------------------------------------------
# Management path
# ---------------------------------------------------------------------------

def rtl8139_get_stats(dev):
    return dev.stats


def rtl8139_set_rx_mode(dev):
    tp = dev.priv
    # Accept broadcast + physical match; the real driver computes a
    # multicast hash here.
    RTL_W32(tp, MAR0, 0xFFFFFFFF)
    RTL_W32(tp, MAR0 + 4, 0xFFFFFFFF)
    return 0


def rtl8139_set_mac_address(dev, addr):
    tp = dev.priv
    for i in range(6):
        linux.outb(addr[i], tp.ioaddr + IDR0 + i)
    tp.mac_addr = list(addr)
    dev.dev_addr = bytes(addr)
    return 0


def mdio_read(tp, location):
    if location == 1:  # BMSR
        return RTL_R16(tp, BMSR)
    return 0


def mdio_write(tp, location, value):
    if location == 0:  # BMCR
        RTL_W16(tp, BMCR, value)


def rtl8139_check_media(dev, tp):
    """Link watch: runs from the driver thread every ~2 s."""
    msr = RTL_R8(tp, MSR)
    link_up = not msr & MSR_LINKB
    if link_up and not linux.netif_carrier_ok(dev):
        linux.netif_carrier_on(dev)
    elif not link_up and linux.netif_carrier_ok(dev):
        linux.netif_carrier_off(dev)
    return link_up


def rtl8139_thread(data):
    """The driver's link-watch thread body (timer driven)."""
    dev = data
    tp = dev.priv
    rtl8139_check_media(dev, tp)
    if tp.have_thread:
        linux.mod_timer(_state.thread_timer, 2000)


def rtl8139_start_thread(tp):
    tp.have_thread = 1
    _state.thread_timer = linux.init_timer(rtl8139_thread, _state.netdev,
                                           name="8139too-thread")
    linux.mod_timer(_state.thread_timer, 2000)


def rtl8139_stop_thread(tp):
    tp.have_thread = 0
    if _state.thread_timer is not None:
        linux.del_timer_sync(_state.thread_timer)
        _state.thread_timer = None


# ---------------------------------------------------------------------------
# Module glue
# ---------------------------------------------------------------------------

def rtl8139_init_module():
    return 0


def rtl8139_cleanup_module():
    return 0


class Rtl8139PciGlue:
    """pci_driver table for the simulated PCI core."""

    name = DRV_NAME
    id_table = ((RTL8139_VENDOR_ID, RTL8139_DEVICE_ID),)

    def probe(self, kernel, pdev):
        return rtl8139_init_one(pdev)

    def remove(self, kernel, pdev):
        rtl8139_remove_one(pdev)

    def matches(self, func):
        return (func.vendor_id, func.device_id) in self.id_table


def make_module(napi=True, compiled=True):
    """Build the loadable module object for this driver."""
    from ...drivers.modulebase import LegacyDriverModule

    def init_fn():
        # Runs after the module loader resets _state, before probe.
        set_napi_mode(napi)
        set_compiled_mode(compiled)
        return rtl8139_init_module()

    return LegacyDriverModule(
        name=DRV_NAME,
        driver_module=__import__(__name__, fromlist=["*"]),
        pci_glue=Rtl8139PciGlue(),
        init_fn=init_fn,
        cleanup_fn=rtl8139_cleanup_module,
    )
