"""psmouse: PS/2 mouse driver (legacy, C-idiomatic).

Mirrors drivers/input/mouse/psmouse-base.c and friends from Linux
2.6.18: a serio-port client with a command engine (send byte, collect
ACK and response bytes), protocol detection (bare PS/2, then the
IntelliMouse magic-knock upgrade, plus probes for protocols our mouse
doesn't speak), and an interrupt-side packet decoder that turns 3- or
4-byte packets into input events.

Most of the *code* here is device-specific detection and initialization
-- exactly the part the paper observes is movable to Java -- while the
byte-by-byte ``psmouse_interrupt`` path stays in the kernel.
"""

from ...core.cstruct import CStruct, Opaque, Ptr, Str, U8, U16, U32, I32

linux = None  # bound at insmod

DRV_NAME = "psmouse"

# Commands.
PSMOUSE_CMD_SETSCALE11 = 0xE6
PSMOUSE_CMD_SETSCALE21 = 0xE7
PSMOUSE_CMD_SETRES = 0xE8
PSMOUSE_CMD_GETINFO = 0xE9
PSMOUSE_CMD_SETSTREAM = 0xEA
PSMOUSE_CMD_POLL = 0xEB
PSMOUSE_CMD_GETID = 0xF2
PSMOUSE_CMD_SETRATE = 0xF3
PSMOUSE_CMD_ENABLE = 0xF4
PSMOUSE_CMD_DISABLE = 0xF5
PSMOUSE_CMD_RESET_DIS = 0xF6
PSMOUSE_CMD_RESET_BAT = 0xFF

PSMOUSE_RET_BAT = 0xAA
PSMOUSE_RET_ID = 0x00
PSMOUSE_RET_ACK = 0xFA
PSMOUSE_RET_NAK = 0xFE

# Protocol types.
PSMOUSE_PS2 = 1
PSMOUSE_IMPS = 2
PSMOUSE_IMEX = 3
PSMOUSE_SYNAPTICS = 4

# States for the command engine.
PSMOUSE_STATE_INITIALIZING = 0
PSMOUSE_STATE_CMD = 1
PSMOUSE_STATE_ACTIVATED = 2

# Input event codes (mirror linux/input.h).
EV_KEY = 0x01
EV_REL = 0x02
REL_X = 0x00
REL_Y = 0x01
REL_WHEEL = 0x08
BTN_LEFT = 0x110
BTN_RIGHT = 0x111
BTN_MIDDLE = 0x112


class psmouse_struct(CStruct):
    """struct psmouse: protocol state shared across the split."""

    FIELDS = [
        ("protocol_type", U8),
        ("model", U8),
        ("rate", U8),
        ("resolution", U8),
        ("pktsize", U8),
        ("pktcnt", U8),
        ("state", U8),
        ("resync_time", U32),
        ("name", Str(32)),
        ("vendor", Str(16)),
        ("devname", Str(32)),
        ("serio", Ptr("psmouse_struct"), Opaque()),
    ]


class psmouse_state:
    def __init__(self):
        self.psmouse = None
        self.serio = None
        self.input_dev = None
        self.packet = []
        self.cmd_response = []
        self.cmd_waiting = False


_state = psmouse_state()


# ---------------------------------------------------------------------------
# Command engine: write bytes, collect ACK + response
# ---------------------------------------------------------------------------

def ps2_sendbyte(byte):
    """Send one byte to the mouse and confirm the ACK."""
    _state.cmd_response = []
    _state.cmd_waiting = True
    err = _state.serio.write(byte)
    _state.cmd_waiting = False
    if err:
        return err
    if not _state.cmd_response or _state.cmd_response[0] != PSMOUSE_RET_ACK:
        return -linux.EIO
    return 0


def ps2_command(command, params_out=0, params_in=()):
    """Full PS/2 command: command byte, argument bytes, response bytes.

    Returns (errno, response_list).  Response excludes the ACKs.
    """
    responses = []

    _state.cmd_response = []
    _state.cmd_waiting = True
    err = _state.serio.write(command)
    if err:
        _state.cmd_waiting = False
        return err, []
    if not _state.cmd_response or _state.cmd_response[0] != PSMOUSE_RET_ACK:
        _state.cmd_waiting = False
        return -linux.EIO, []
    responses.extend(_state.cmd_response[1:])

    for param in params_in:
        _state.cmd_response = []
        err = _state.serio.write(param)
        if err:
            _state.cmd_waiting = False
            return err, []
        if (not _state.cmd_response
                or _state.cmd_response[0] != PSMOUSE_RET_ACK):
            _state.cmd_waiting = False
            return -linux.EIO, []
        responses.extend(_state.cmd_response[1:])

    _state.cmd_waiting = False
    if len(responses) < params_out:
        return -linux.EIO, responses
    return 0, responses


# ---------------------------------------------------------------------------
# Probing and protocol detection
# ---------------------------------------------------------------------------

def psmouse_reset(psmouse):
    """Reset with self-test: expect ACK, 0xAA, 0x00."""
    err, resp = ps2_command(PSMOUSE_CMD_RESET_BAT, params_out=2)
    if err:
        return err
    if len(resp) < 2 or resp[0] != PSMOUSE_RET_BAT or resp[1] != PSMOUSE_RET_ID:
        return -linux.EIO
    return 0


def psmouse_probe(psmouse):
    """Is there a mouse out there at all?"""
    err, resp = ps2_command(PSMOUSE_CMD_GETID, params_out=1)
    if err:
        return err
    if resp[0] not in (0x00, 0x03, 0x04):
        return -linux.ENODEV
    return 0


def psmouse_sliced_command(command):
    """Synaptics-style sliced command encoding (always NAKed by our
    plain mouse, which is how detection correctly fails)."""
    err, _resp = ps2_command(PSMOUSE_CMD_SETSCALE11)
    if err:
        return err
    for i in range(6, -2, -2):
        err, _resp = ps2_command(PSMOUSE_CMD_SETRES,
                                 params_in=((command >> i) & 3,))
        if err:
            return err
    return 0


def synaptics_detect(psmouse):
    """Probe for a Synaptics touchpad; our device is not one."""
    err = psmouse_sliced_command(0x00)
    if err:
        return -linux.ENODEV
    err, resp = ps2_command(PSMOUSE_CMD_GETINFO, params_out=3)
    if err:
        return -linux.ENODEV
    if len(resp) >= 2 and resp[1] == 0x47:
        return 0
    return -linux.ENODEV


def genius_detect(psmouse):
    """Probe for a Genius NewNet mouse; ours is not one."""
    for _i in range(4):
        err, _resp = ps2_command(PSMOUSE_CMD_SETSCALE11)
        if err:
            return -linux.ENODEV
    err, resp = ps2_command(PSMOUSE_CMD_GETINFO, params_out=3)
    if err:
        return -linux.ENODEV
    if len(resp) >= 1 and resp[0] == 0x00:
        return -linux.ENODEV  # plain mice answer 0x20/0x00 status here
    return -linux.ENODEV


def intellimouse_detect(psmouse):
    """The magic knock: set rate 200, 100, 80, then read the ID."""
    for rate in (200, 100, 80):
        err, _resp = ps2_command(PSMOUSE_CMD_SETRATE, params_in=(rate,))
        if err:
            return err
    err, resp = ps2_command(PSMOUSE_CMD_GETID, params_out=1)
    if err:
        return err
    if resp[0] != 3:
        return -linux.ENODEV
    psmouse.model = 3
    return 0


def im_explorer_detect(psmouse):
    """IntelliMouse Explorer knock (200, 200, 80); ours stays ID 3."""
    for rate in (200, 200, 80):
        err, _resp = ps2_command(PSMOUSE_CMD_SETRATE, params_in=(rate,))
        if err:
            return err
    err, resp = ps2_command(PSMOUSE_CMD_GETID, params_out=1)
    if err:
        return err
    if resp[0] != 4:
        return -linux.ENODEV
    psmouse.model = 4
    return 0


def psmouse_extensions(psmouse):
    """Try protocol extensions from fanciest to plainest."""
    if synaptics_detect(psmouse) == 0:
        psmouse.protocol_type = PSMOUSE_SYNAPTICS
        psmouse.name = "Synaptics TouchPad"
        psmouse.pktsize = 6
        return PSMOUSE_SYNAPTICS

    if genius_detect(psmouse) == 0:
        psmouse.name = "Genius Mouse"
        psmouse.pktsize = 4
        return PSMOUSE_PS2

    if intellimouse_detect(psmouse) == 0:
        if im_explorer_detect(psmouse) == 0:
            psmouse.protocol_type = PSMOUSE_IMEX
            psmouse.name = "IntelliMouse Explorer"
            psmouse.pktsize = 4
            return PSMOUSE_IMEX
        psmouse.protocol_type = PSMOUSE_IMPS
        psmouse.name = "IntelliMouse"
        psmouse.pktsize = 4
        return PSMOUSE_IMPS

    psmouse.protocol_type = PSMOUSE_PS2
    psmouse.name = "PS/2 Mouse"
    psmouse.pktsize = 3
    return PSMOUSE_PS2


# ---------------------------------------------------------------------------
# Rate / resolution / enable
# ---------------------------------------------------------------------------

def psmouse_set_rate(psmouse, rate):
    err, _ = ps2_command(PSMOUSE_CMD_SETRATE, params_in=(rate,))
    if err:
        return err
    psmouse.rate = rate
    return 0


def psmouse_set_resolution(psmouse, resolution):
    table = {25: 0, 50: 1, 100: 2, 200: 3}
    param = table.get(resolution, 3)
    err, _ = ps2_command(PSMOUSE_CMD_SETRES, params_in=(param,))
    if err:
        return err
    psmouse.resolution = resolution
    return 0


def psmouse_initialize(psmouse):
    err = psmouse_set_resolution(psmouse, 200)
    if err:
        return err
    err = psmouse_set_rate(psmouse, 100)
    if err:
        return err
    err, _ = ps2_command(PSMOUSE_CMD_SETSCALE11)
    if err:
        return err
    return 0


def psmouse_activate(psmouse):
    err, _ = ps2_command(PSMOUSE_CMD_ENABLE)
    if err:
        return err
    psmouse.state = PSMOUSE_STATE_ACTIVATED
    return 0


def psmouse_deactivate(psmouse):
    err, _ = ps2_command(PSMOUSE_CMD_DISABLE)
    if err:
        return err
    psmouse.state = PSMOUSE_STATE_CMD
    return 0


# ---------------------------------------------------------------------------
# Interrupt path (critical root): packet decode
# ---------------------------------------------------------------------------

def psmouse_interrupt(serio, byte, flags):
    """Byte from the mouse, in hardirq context."""
    if _state.cmd_waiting:
        _state.cmd_response.append(byte)
        return

    psmouse = _state.psmouse
    if psmouse is None or psmouse.state != PSMOUSE_STATE_ACTIVATED:
        return

    _state.packet.append(byte)
    if len(_state.packet) < psmouse.pktsize:
        return
    packet = _state.packet
    _state.packet = []
    psmouse_process_byte(psmouse, packet)


def psmouse_process_byte(psmouse, packet):
    """Decode one complete movement packet into input events."""
    input_dev = _state.input_dev
    if input_dev is None:
        return

    b0 = packet[0]
    if not b0 & 0x08:
        return  # lost sync; drop

    buttons = b0 & 0x07
    dx = packet[1]
    dy = packet[2]
    if b0 & 0x10:
        dx -= 256
    if b0 & 0x20:
        dy -= 256

    input_dev.input_report_key(BTN_LEFT, buttons & 1)
    input_dev.input_report_key(BTN_RIGHT, (buttons >> 1) & 1)
    input_dev.input_report_key(BTN_MIDDLE, (buttons >> 2) & 1)
    input_dev.input_report_rel(REL_X, dx)
    input_dev.input_report_rel(REL_Y, dy)

    if psmouse.pktsize == 4:
        wheel = packet[3]
        if wheel >= 128:
            wheel -= 256
        input_dev.input_report_rel(REL_WHEEL, wheel)

    input_dev.input_sync()


# ---------------------------------------------------------------------------
# Connect / disconnect (serio driver interface)
# ---------------------------------------------------------------------------

def psmouse_connect(serio):
    """A new serio port appeared: probe and set up the mouse."""
    psmouse = psmouse_struct()
    psmouse.state = PSMOUSE_STATE_INITIALIZING
    _state.psmouse = psmouse
    _state.serio = serio
    _state.packet = []

    err = serio.open(psmouse_interrupt)
    if err:
        _state.psmouse = None
        return err

    err = psmouse_probe(psmouse)
    if err:
        serio.close()
        _state.psmouse = None
        return err

    err = psmouse_reset(psmouse)
    if err:
        serio.close()
        _state.psmouse = None
        return err

    psmouse_extensions(psmouse)

    err = psmouse_initialize(psmouse)
    if err:
        serio.close()
        _state.psmouse = None
        return err

    input_dev = linux.input_allocate_device(psmouse.name)
    input_dev.set_capability(EV_KEY, BTN_LEFT)
    input_dev.set_capability(EV_KEY, BTN_RIGHT)
    input_dev.set_capability(EV_KEY, BTN_MIDDLE)
    input_dev.set_capability(EV_REL, REL_X)
    input_dev.set_capability(EV_REL, REL_Y)
    if psmouse.pktsize == 4:
        input_dev.set_capability(EV_REL, REL_WHEEL)
    err = linux.input_register_device(input_dev)
    if err:
        serio.close()
        _state.psmouse = None
        return err
    _state.input_dev = input_dev

    psmouse.state = PSMOUSE_STATE_CMD
    err = psmouse_activate(psmouse)
    if err:
        linux.input_unregister_device(input_dev)
        serio.close()
        _state.psmouse = None
        _state.input_dev = None
        return err
    return 0


def psmouse_disconnect(serio):
    psmouse = _state.psmouse
    if psmouse is None:
        return
    psmouse_deactivate(psmouse)
    if _state.input_dev is not None:
        linux.input_unregister_device(_state.input_dev)
        _state.input_dev = None
    serio.close()
    _state.psmouse = None


def psmouse_init():
    return 0


def psmouse_exit():
    return 0


class PsmouseSerioGlue:
    """Binds the driver to a serio port at insmod.

    ``port`` selects which port (a fleet kernel has one per mouse);
    the default keeps the single-device behaviour of binding the
    first one.
    """

    def __init__(self, port=None):
        self.serio = None
        self._preferred = port

    def connect(self, kernel):
        ports = kernel.input.serio_ports
        if not ports:
            return -linux.ENODEV if linux else -19
        self.serio = self._preferred if self._preferred is not None \
            else ports[0]
        return psmouse_connect(self.serio)

    def disconnect(self):
        if self.serio is not None:
            psmouse_disconnect(self.serio)
            self.serio = None


def make_module():
    from ...kernel.module import KernelModule
    from ..linuxapi import LinuxApi
    import sys

    class PsmouseModule(KernelModule):
        name = DRV_NAME

        def __init__(self):
            self.glue = PsmouseSerioGlue()

        def init_module(self, kernel):
            sys.modules[__name__].linux = LinuxApi(kernel)
            ret = psmouse_init()
            if ret:
                return ret
            return self.glue.connect(kernel)

        def cleanup_module(self, kernel):
            self.glue.disconnect()
            psmouse_exit()

    return PsmouseModule()
