"""ens1371: Ensoniq ES1371 / Creative AudioPCI sound driver (legacy).

Mirrors sound/pci/ens1370.c (the ens1371 variant) from Linux 2.6.18:
AC'97 codec access with write-in-progress polling, sample-rate-converter
RAM programming, DAC2 (playback) frame setup through the memory-page
window, and a period interrupt handler that calls
``snd_pcm_period_elapsed``.
"""

from ...core.cstruct import CStruct, Opaque, Ptr, Str, U8, U16, U32, I32

linux = None  # bound at insmod

DRV_NAME = "ens1371"

ENSONIQ_VENDOR_ID = 0x1274
ES1371_DEVICE_ID = 0x1371

# Register offsets.
ES_REG_CONTROL = 0x00
ES_REG_STATUS = 0x04
ES_REG_MEM_PAGE = 0x0C
ES_REG_1371_SMPRATE = 0x10
ES_REG_1371_CODEC = 0x14
ES_REG_SERIAL = 0x20
ES_REG_DAC2_COUNT = 0x28
ES_REG_DAC2_FRAME = 0x38
ES_REG_DAC2_SIZE = 0x3C
ES_PAGE_DAC = 0x0C

# CONTROL bits.
ES_DAC2_EN = 1 << 5

# STATUS bits.
ES_INTR = 1 << 31
ES_DAC2 = 1 << 1

# SERIAL (SCTRL) bits.
ES_P2_INTR_EN = 1 << 9
ES_P2_PAUSE = 1 << 12
ES_P2_MODE_16BIT = 1 << 11
ES_P2_MODE_STEREO = 1 << 2

# CODEC bits.
ES_1371_CODEC_RDY = 1 << 31
ES_1371_CODEC_WIP = 1 << 30
ES_1371_CODEC_PIRD = 1 << 23

# SRC bits.
ES_1371_SRC_RAM_BUSY = 1 << 23
ES_1371_SRC_RAM_WE = 1 << 24
ES_1371_DAC2_RATE_REG = 0x75

AC97_MASTER = 0x02
AC97_PCM = 0x18
AC97_VENDOR_ID1 = 0x7C
AC97_VENDOR_ID2 = 0x7E


class ensoniq(CStruct):
    """struct ensoniq: the chip state shared across the split."""

    FIELDS = [
        ("port", U32),
        ("irq", U32),
        ("ctrl", U32),
        ("sctrl", U32),
        ("cssr", U32),
        ("dac2_addr", U32),
        ("dac2_size_frames", U32),
        ("dac2_period_frames", U32),
        ("dac2_rate", U32),
        ("playing", U8),
        ("codec_vendor", U32),
        ("card_name", Str(32)),
        ("pdev", Ptr("ensoniq"), Opaque()),
    ]


class ens_state:
    def __init__(self):
        self.ensoniq = None
        self.card = None
        self.pcm = None
        self.substream = None
        self.dac2_dma = None
        self.lock = None


_state = ens_state()


# ---------------------------------------------------------------------------
# Low-level access
# ---------------------------------------------------------------------------

def outl(val, port):
    linux.outl(val, port)


def inl(port):
    return linux.inl(port)


def snd_es1371_wait_src_ready(ensoniq_):
    for _i in range(500):
        r = inl(ensoniq_.port + ES_REG_1371_SMPRATE)
        if not r & ES_1371_SRC_RAM_BUSY:
            return 0, r
        linux.udelay(1)
    return -linux.EIO, 0


def snd_es1371_src_write(ensoniq_, reg, data):
    err, _r = snd_es1371_wait_src_ready(ensoniq_)
    if err:
        return err
    outl((reg << 25) | ES_1371_SRC_RAM_WE | (data & 0xFFFF),
         ensoniq_.port + ES_REG_1371_SMPRATE)
    return 0


def snd_es1371_src_read(ensoniq_, reg):
    err, _r = snd_es1371_wait_src_ready(ensoniq_)
    if err:
        return err, 0
    outl(reg << 25, ensoniq_.port + ES_REG_1371_SMPRATE)
    err, r = snd_es1371_wait_src_ready(ensoniq_)
    if err:
        return err, 0
    return 0, r & 0xFFFF


def snd_es1371_codec_write(ensoniq_, reg, val):
    """AC97 register write with WIP poll."""
    for _i in range(1000):
        r = inl(ensoniq_.port + ES_REG_1371_CODEC)
        if not r & ES_1371_CODEC_WIP:
            outl((reg << 16) | (val & 0xFFFF),
                 ensoniq_.port + ES_REG_1371_CODEC)
            return 0
        linux.udelay(1)
    return -linux.EIO


def snd_es1371_codec_read(ensoniq_, reg):
    """AC97 register read; returns (errno, value)."""
    for _i in range(1000):
        r = inl(ensoniq_.port + ES_REG_1371_CODEC)
        if not r & ES_1371_CODEC_WIP:
            outl((reg << 16) | ES_1371_CODEC_PIRD,
                 ensoniq_.port + ES_REG_1371_CODEC)
            for _j in range(1000):
                r = inl(ensoniq_.port + ES_REG_1371_CODEC)
                if r & ES_1371_CODEC_RDY:
                    return 0, r & 0xFFFF
                linux.udelay(1)
            return -linux.EIO, 0
        linux.udelay(1)
    return -linux.EIO, 0


# ---------------------------------------------------------------------------
# Rate programming
# ---------------------------------------------------------------------------

def snd_es1371_dac2_rate(ensoniq_, rate):
    err = snd_es1371_src_write(ensoniq_, ES_1371_DAC2_RATE_REG, rate)
    if err:
        return err
    ensoniq_.dac2_rate = rate
    return 0


# ---------------------------------------------------------------------------
# Chip init
# ---------------------------------------------------------------------------

def snd_ens1371_chip_init(ensoniq_):
    """Reset and bring up codec + SRC; returns 0 or -errno."""
    outl(0, ensoniq_.port + ES_REG_CONTROL)
    outl(0, ensoniq_.port + ES_REG_SERIAL)
    linux.msleep(20)

    # Probe the AC97 codec: vendor ID registers.
    err, v1 = snd_es1371_codec_read(ensoniq_, AC97_VENDOR_ID1)
    if err:
        return err
    err, v2 = snd_es1371_codec_read(ensoniq_, AC97_VENDOR_ID2)
    if err:
        return err
    ensoniq_.codec_vendor = (v1 << 16) | v2

    # Unmute master and PCM volume.
    err = snd_es1371_codec_write(ensoniq_, AC97_MASTER, 0x0000)
    if err:
        return err
    err = snd_es1371_codec_write(ensoniq_, AC97_PCM, 0x0808)
    if err:
        return err

    err = snd_es1371_dac2_rate(ensoniq_, 44100)
    if err:
        return err
    return 0


# ---------------------------------------------------------------------------
# PCM ops (invoked by the sound core under the library lock)
# ---------------------------------------------------------------------------

class snd_ens1371_playback_ops:
    """The ops table registered with the PCM substream."""

    @staticmethod
    def open(substream):
        return snd_ens1371_playback_open(substream)

    @staticmethod
    def close(substream):
        return snd_ens1371_playback_close(substream)

    @staticmethod
    def hw_params(substream):
        return snd_ens1371_playback_hw_params(substream)

    @staticmethod
    def prepare(substream):
        return snd_ens1371_playback_prepare(substream)

    @staticmethod
    def trigger(substream, cmd):
        return snd_ens1371_playback_trigger(substream, cmd)

    @staticmethod
    def pointer(substream):
        return snd_ens1371_playback_pointer(substream)


def snd_ens1371_playback_open(substream):
    substream.private_data = _state.ensoniq
    return 0


def snd_ens1371_playback_close(substream):
    substream.private_data = None
    return 0


def snd_ens1371_playback_hw_params(substream):
    ensoniq_ = substream.private_data
    rt = substream.runtime
    size = rt.buffer_bytes
    if _state.dac2_dma is not None:
        linux.dma_free_coherent(_state.dac2_dma)
        _state.dac2_dma = None
    _state.dac2_dma = linux.dma_alloc_coherent(size, owner=DRV_NAME)
    if _state.dac2_dma is None:
        return -linux.ENOMEM
    rt.dma_region = _state.dac2_dma
    ensoniq_.dac2_size_frames = size // 4
    ensoniq_.dac2_period_frames = rt.period_bytes // rt.frame_bytes()
    err = snd_es1371_dac2_rate(ensoniq_, rt.rate)
    if err:
        return err
    return 0


def snd_ens1371_playback_prepare(substream):
    ensoniq_ = substream.private_data
    rt = substream.runtime

    mode = 0
    if rt.sample_bytes == 2:
        mode |= ES_P2_MODE_16BIT
    if rt.channels == 2:
        mode |= ES_P2_MODE_STEREO
    ensoniq_.sctrl = mode

    outl(ES_PAGE_DAC, ensoniq_.port + ES_REG_MEM_PAGE)
    outl(_state.dac2_dma.dma_addr, ensoniq_.port + ES_REG_DAC2_FRAME)
    outl(ensoniq_.dac2_size_frames - 1, ensoniq_.port + ES_REG_DAC2_SIZE)
    count = (rt.period_bytes // rt.frame_bytes()) - 1
    outl(count, ensoniq_.port + ES_REG_DAC2_COUNT)
    outl(ensoniq_.sctrl, ensoniq_.port + ES_REG_SERIAL)
    return 0


def snd_ens1371_playback_trigger(substream, cmd):
    ensoniq_ = substream.private_data
    if cmd == linux.SNDRV_PCM_TRIGGER_START:
        ensoniq_.sctrl |= ES_P2_INTR_EN
        outl(ensoniq_.sctrl, ensoniq_.port + ES_REG_SERIAL)
        ensoniq_.ctrl |= ES_DAC2_EN
        outl(ensoniq_.ctrl, ensoniq_.port + ES_REG_CONTROL)
        ensoniq_.playing = 1
        return 0
    if cmd == linux.SNDRV_PCM_TRIGGER_STOP:
        ensoniq_.ctrl &= ~ES_DAC2_EN
        outl(ensoniq_.ctrl, ensoniq_.port + ES_REG_CONTROL)
        ensoniq_.sctrl &= ~ES_P2_INTR_EN
        outl(ensoniq_.sctrl, ensoniq_.port + ES_REG_SERIAL)
        ensoniq_.playing = 0
        return 0
    return -linux.EINVAL


def snd_ens1371_playback_pointer(substream):
    ensoniq_ = substream.private_data
    outl(ES_PAGE_DAC, ensoniq_.port + ES_REG_MEM_PAGE)
    r = inl(ensoniq_.port + ES_REG_DAC2_SIZE)
    cur_frames = (r >> 16) & 0xFFFF
    return cur_frames * 4


# ---------------------------------------------------------------------------
# Interrupt handler (critical root)
# ---------------------------------------------------------------------------

def snd_ens1371_interrupt(irq, dev_id):
    ensoniq_ = dev_id
    status = inl(ensoniq_.port + ES_REG_STATUS)
    if not status & ES_INTR:
        return linux.IRQ_NONE
    if status & ES_DAC2:
        # Ack: toggle the period-interrupt enable.
        sctrl = ensoniq_.sctrl
        outl(sctrl & ~ES_P2_INTR_EN, ensoniq_.port + ES_REG_SERIAL)
        outl(sctrl, ensoniq_.port + ES_REG_SERIAL)
        if _state.substream is not None:
            linux.snd_pcm_period_elapsed(_state.substream)
    return linux.IRQ_HANDLED


# ---------------------------------------------------------------------------
# Probe / remove
# ---------------------------------------------------------------------------

def snd_ens1371_create(pdev):
    """Allocate and init the chip; returns 0 or -errno."""
    err = linux.pci_enable_device(pdev)
    if err:
        return err
    err = linux.pci_request_regions(pdev, DRV_NAME)
    if err:
        linux.pci_disable_device(pdev)
        return err

    ensoniq_ = ensoniq()
    ensoniq_.port = linux.pci_resource_start(pdev, 0)
    ensoniq_.irq = pdev.irq
    ensoniq_.card_name = "Ensoniq AudioPCI ES1371"
    _state.ensoniq = ensoniq_
    _state.lock = linux.spin_lock_init("ens1371")

    err = linux.request_irq(ensoniq_.irq, snd_ens1371_interrupt,
                            DRV_NAME, ensoniq_)
    if err:
        linux.pci_release_regions(pdev)
        linux.pci_disable_device(pdev)
        return err

    err = snd_ens1371_chip_init(ensoniq_)
    if err:
        linux.free_irq(ensoniq_.irq, ensoniq_)
        linux.pci_release_regions(pdev)
        linux.pci_disable_device(pdev)
        return err
    return 0


def snd_ens1371_pcm(card):
    pcm = card.new_pcm("ES1371/1")
    pcm.playback.ops = snd_ens1371_playback_ops
    _state.pcm = pcm
    _state.substream = pcm.playback
    return 0


# The AC97 mixer controls this codec exposes; ALSA registers each as a
# separate control element (snd_ctl_add per entry).
AC97_MIXER_CONTROLS = (
    ("Master Playback Switch", 0x02), ("Master Playback Volume", 0x02),
    ("Headphone Playback Switch", 0x04), ("Headphone Playback Volume", 0x04),
    ("Master Mono Playback Switch", 0x06), ("Master Mono Playback Volume", 0x06),
    ("PC Speaker Playback Switch", 0x0A), ("PC Speaker Playback Volume", 0x0A),
    ("Phone Playback Switch", 0x0C), ("Phone Playback Volume", 0x0C),
    ("Mic Playback Switch", 0x0E), ("Mic Playback Volume", 0x0E),
    ("Mic Boost (+20dB)", 0x0E),
    ("Line Playback Switch", 0x10), ("Line Playback Volume", 0x10),
    ("CD Playback Switch", 0x12), ("CD Playback Volume", 0x12),
    ("Video Playback Switch", 0x14), ("Video Playback Volume", 0x14),
    ("Aux Playback Switch", 0x16), ("Aux Playback Volume", 0x16),
    ("PCM Playback Switch", 0x18), ("PCM Playback Volume", 0x18),
    ("Capture Source", 0x1A), ("Capture Switch", 0x1C),
    ("Capture Volume", 0x1C),
)


def snd_ens1371_mixer(card):
    """Register the AC97 mixer: one control element per entry, with the
    codec register initialized for each."""
    ensoniq_ = _state.ensoniq
    for name, reg in AC97_MIXER_CONTROLS:
        err = snd_es1371_codec_write(ensoniq_, reg, 0x0808)
        if err:
            return err
        err = linux.snd_ctl_add(card, name)
        if err:
            return err
    return 0


def snd_ens1371_probe(pdev):
    card = linux.snd_card_new("AudioPCI")
    _state.card = card

    err = snd_ens1371_create(pdev)
    if err:
        return err

    err = snd_ens1371_pcm(card)
    if err:
        snd_ens1371_free(pdev)
        return err

    err = snd_ens1371_mixer(card)
    if err:
        snd_ens1371_free(pdev)
        return err

    err = linux.snd_card_register(card)
    if err:
        snd_ens1371_free(pdev)
        return err
    card.private_data = _state.ensoniq
    return 0


def snd_ens1371_free(pdev):
    ensoniq_ = _state.ensoniq
    if ensoniq_ is not None:
        outl(0, ensoniq_.port + ES_REG_CONTROL)
        outl(0, ensoniq_.port + ES_REG_SERIAL)
        linux.free_irq(ensoniq_.irq, ensoniq_)
    if _state.dac2_dma is not None:
        linux.dma_free_coherent(_state.dac2_dma)
        _state.dac2_dma = None
    linux.pci_release_regions(pdev)
    linux.pci_disable_device(pdev)
    _state.ensoniq = None


def snd_ens1371_remove(pdev):
    if _state.card is not None:
        linux.snd_card_free(_state.card)
        _state.card = None
    snd_ens1371_free(pdev)


class Ens1371PciGlue:
    name = DRV_NAME
    id_table = ((ENSONIQ_VENDOR_ID, ES1371_DEVICE_ID),)

    def probe(self, kernel, pdev):
        return snd_ens1371_probe(pdev)

    def remove(self, kernel, pdev):
        snd_ens1371_remove(pdev)

    def matches(self, func):
        return (func.vendor_id, func.device_id) in self.id_table


def alsa_card_ens1371_init():
    return 0


def alsa_card_ens1371_exit():
    return 0


def make_module():
    from ..modulebase import LegacyDriverModule

    return LegacyDriverModule(
        name=DRV_NAME,
        driver_module=__import__(__name__, fromlist=["*"]),
        pci_glue=Ens1371PciGlue(),
        init_fn=alsa_card_ens1371_init,
        cleanup_fn=alsa_card_ens1371_exit,
    )
