"""uhci-hcd: UHCI USB 1.1 host controller driver (legacy, C-idiomatic).

Mirrors drivers/usb/host/uhci-hcd.c in shape: the HCD owns a transfer
schedule in DMA memory, enqueues URBs by building transfer descriptors,
completes them from its interrupt handler, and manages root-hub ports
(reset, enable, enumerate).  Nearly everything here is data-path or
port-management code reachable from ``uhci_urb_enqueue`` and
``uhci_irq`` -- which is why the paper could move only 4% of this
driver's functions to Java.
"""

import struct as _pystruct

from ...core.cstruct import CStruct, Opaque, Ptr, Str, U8, U16, U32

linux = None  # bound at insmod

DRV_NAME = "uhci_hcd"

UHCI_VENDOR_ID = 0x8086
UHCI_DEVICE_ID = 0x7020

# Registers.
USBCMD = 0x00
USBSTS = 0x02
USBINTR = 0x04
FRNUM = 0x06
FLBASEADD = 0x08
SOFMOD = 0x0C
PORTSC1 = 0x10
PORTSC2 = 0x12

CMD_RS = 0x0001
CMD_HCRESET = 0x0002
CMD_MAXP = 0x0080

STS_USBINT = 0x0001
STS_ERROR = 0x0002
STS_HCHALTED = 0x0020

PORT_CCS = 0x0001
PORT_CSC = 0x0002
PORT_PE = 0x0004
PORT_PEC = 0x0008
PORT_LSDA = 0x0100
PORT_PR = 0x0200

TD_IN = 0x01
TD_ACTIVE = 0x02
TD_DONE = 0x04
TD_ERROR = 0x08

TD_SIZE = 16
TD_RING_ENTRIES = 64
TD_MAX_DATA = 512

UHCI_NUM_PORTS = 2


class uhci_hcd_state(CStruct):
    """struct uhci_hcd: controller state shared across the split."""

    FIELDS = [
        ("io_addr", U32),
        ("irq", U32),
        ("rh_numports", U16),
        ("frame_number", U16),
        ("is_stopped", U8),
        ("port_c_suspend", U16),
        ("resuming_ports", U16),
        ("fl_dma", U32),
        ("pdev", Ptr("uhci_hcd_state"), Opaque()),
    ]


class uhci_state:
    """Non-marshaled kernel state."""

    def __init__(self):
        self.uhci = None
        self.pdev = None
        self.frame_list = None
        self.lock = None
        self.td_head = 0      # next ring slot to fill
        self.td_dirty = 0     # next ring slot to reclaim
        self.td_urb = {}      # slot -> (urb, is_last_td)
        self.urb_inflight = {}
        self.port_devices = []


_state = uhci_state()


# ---------------------------------------------------------------------------
# Register access
# ---------------------------------------------------------------------------

def uhci_readw(uhci, reg):
    return linux.inw(uhci.io_addr + reg)


def uhci_writew(uhci, value, reg):
    linux.outw(value, uhci.io_addr + reg)


def uhci_readl(uhci, reg):
    return linux.inl(uhci.io_addr + reg)


def uhci_writel(uhci, value, reg):
    linux.outl(value, uhci.io_addr + reg)


# ---------------------------------------------------------------------------
# Controller bring-up
# ---------------------------------------------------------------------------

def uhci_reset_hc(uhci):
    """Host-controller reset; waits for the controller to settle."""
    uhci_writew(uhci, CMD_HCRESET, USBCMD)
    linux.msleep(10)
    if uhci_readw(uhci, USBCMD) & CMD_HCRESET:
        return -linux.EIO
    return 0


def uhci_start(uhci):
    """Allocate the schedule and set the controller running."""
    _state.frame_list = linux.dma_alloc_coherent(
        TD_RING_ENTRIES * TD_SIZE, owner=DRV_NAME
    )
    if _state.frame_list is None:
        return -linux.ENOMEM
    uhci.fl_dma = _state.frame_list.dma_addr
    uhci_writel(uhci, uhci.fl_dma, FLBASEADD)
    uhci_writew(uhci, 0, FRNUM)
    uhci_writew(uhci, 0x000F, USBINTR)  # all interrupt sources
    uhci_writew(uhci, CMD_RS | CMD_MAXP, USBCMD)
    uhci.is_stopped = 0
    return 0


def uhci_stop(uhci):
    uhci_writew(uhci, 0, USBINTR)
    uhci_writew(uhci, 0, USBCMD)
    uhci.is_stopped = 1
    if _state.frame_list is not None:
        linux.dma_free_coherent(_state.frame_list)
        _state.frame_list = None


# ---------------------------------------------------------------------------
# Transfer descriptors
# ---------------------------------------------------------------------------

def uhci_td_available(count):
    used = (_state.td_head - _state.td_dirty) % TD_RING_ENTRIES
    return TD_RING_ENTRIES - used - 1 >= count


def uhci_fill_td(slot, buf_dma, length, flags, dev_addr, endpoint):
    _pystruct.pack_into(
        "<IHBBBBH", _state.frame_list.data, slot * TD_SIZE,
        buf_dma, length, flags | TD_ACTIVE, dev_addr, endpoint, 0, 0,
    )


def uhci_read_td(slot):
    return _pystruct.unpack_from(
        "<IHBBBBH", _state.frame_list.data, slot * TD_SIZE
    )


def uhci_clear_td(slot):
    _pystruct.pack_into("<IHBBBBH", _state.frame_list.data,
                        slot * TD_SIZE, 0, 0, 0, 0, 0, 0, 0)


# ---------------------------------------------------------------------------
# URB enqueue / dequeue (the HCD driver interface)
# ---------------------------------------------------------------------------

def uhci_urb_enqueue(urb):
    """Build TDs for one URB; returns 0 or -errno."""
    from ...kernel.usb import pipe_endpoint, pipe_in

    uhci = _state.uhci
    if uhci is None or uhci.is_stopped:
        return -linux.ENODEV

    data = urb.buffer
    length = len(data)
    td_count = max(1, (length + TD_MAX_DATA - 1) // TD_MAX_DATA)
    if not uhci_td_available(td_count):
        return -linux.ENOMEM

    # Stage the transfer buffer in DMA memory (one region per URB);
    # allocated before taking the lock, since the allocator may sleep.
    dma = linux.dma_alloc_coherent(max(length, 8), owner=DRV_NAME)
    if dma is None:
        return -linux.ENOMEM
    is_in = pipe_in(urb.pipe)
    if not is_in:
        dma.data[0:length] = bytes(data)

    linux.spin_lock_irqsave(_state.lock)

    slots = []
    offset = 0
    for i in range(td_count):
        chunk = min(TD_MAX_DATA, length - offset) if length else 0
        slot = _state.td_head
        flags = TD_IN if is_in else 0
        uhci_fill_td(slot, dma.dma_addr + offset, chunk, flags,
                     urb.device.address, pipe_endpoint(urb.pipe))
        _state.td_urb[slot] = (urb, i == td_count - 1)
        _state.td_head = (_state.td_head + 1) % TD_RING_ENTRIES
        slots.append(slot)
        offset += chunk

    _state.urb_inflight[urb.id] = {
        "urb": urb, "dma": dma, "slots": slots, "actual": 0,
    }
    linux.spin_unlock_irqrestore(_state.lock)
    # Confirm the controller is still running before reporting the URB
    # queued; the register access also serves as the doorbell that ends
    # an idle-coast, so the new TDs execute in the next frame.
    if not uhci_readw(uhci, USBCMD) & CMD_RS:
        return -linux.EIO
    return 0


def uhci_urb_dequeue(urb):
    entry = _state.urb_inflight.pop(urb.id, None)
    if entry is None:
        return -linux.EINVAL
    linux.spin_lock_irqsave(_state.lock)
    for slot in entry["slots"]:
        uhci_clear_td(slot)
        _state.td_urb.pop(slot, None)
    linux.dma_free_coherent(entry["dma"])
    linux.spin_unlock_irqrestore(_state.lock)
    return 0


# ---------------------------------------------------------------------------
# Interrupt handler (critical root)
# ---------------------------------------------------------------------------

def uhci_irq(irq, dev_id):
    uhci = dev_id
    status = uhci_readw(uhci, USBSTS)
    if not status & (STS_USBINT | STS_ERROR):
        return linux.IRQ_NONE
    uhci_writew(uhci, status, USBSTS)  # w1c
    uhci_scan_schedule(uhci)
    # Port-change handling (resume detect, connect changes) is reached
    # from the interrupt path on UHCI -- this is what makes nearly the
    # whole driver kernel-resident in the paper's partitioning.
    if uhci_hub_status_data(uhci):
        uhci_scan_ports(uhci)
    return linux.IRQ_HANDLED


def uhci_scan_schedule(uhci):
    """Reclaim completed TDs in order; give back finished URBs."""
    from ...kernel.usb import pipe_in

    while _state.td_dirty != _state.td_head:
        slot = _state.td_dirty
        _buf, _length, flags, _dev, _ep, _res, actual = uhci_read_td(slot)
        if flags & TD_ACTIVE:
            break  # controller hasn't executed this one yet
        if not flags & TD_DONE:
            break
        urb, is_last = _state.td_urb.pop(slot)
        entry = _state.urb_inflight.get(urb.id)
        uhci_clear_td(slot)
        _state.td_dirty = (_state.td_dirty + 1) % TD_RING_ENTRIES
        if entry is None:
            continue  # urb was dequeued
        entry["actual"] += actual
        failed = bool(flags & TD_ERROR)
        if is_last or failed:
            _state.urb_inflight.pop(urb.id, None)
            if pipe_in(urb.pipe):
                n = entry["actual"]
                urb.buffer[0:n] = entry["dma"].data[0:n]
            linux.dma_free_coherent(entry["dma"])
            status = -linux.EIO if failed else 0
            linux.usb_giveback_urb(urb, status, entry["actual"])


# ---------------------------------------------------------------------------
# Root hub / port management
# ---------------------------------------------------------------------------

def uhci_hub_status_data(uhci):
    """Bitmap of ports with status changes (hub polling)."""
    changed = 0
    for port in range(uhci.rh_numports):
        sc = uhci_readw(uhci, PORTSC1 + port * 2)
        if sc & (PORT_CSC | PORT_PEC):
            changed |= 1 << port
    return changed


def uhci_port_reset(uhci, port):
    """Assert then deassert port reset; enables the port."""
    reg = PORTSC1 + port * 2
    uhci_writew(uhci, PORT_PR, reg)
    linux.msleep(50)
    uhci_writew(uhci, 0, reg)
    linux.msleep(10)
    sc = uhci_readw(uhci, reg)
    if not sc & PORT_PE:
        uhci_writew(uhci, PORT_PE, reg)
        sc = uhci_readw(uhci, reg)
    return 0 if sc & PORT_PE else -linux.EIO


def uhci_scan_ports(uhci):
    """Enumerate devices on ports with connect-status changes."""
    from ...kernel.usb import UsbDevice, UsbDeviceDescriptor

    for port in range(uhci.rh_numports):
        reg = PORTSC1 + port * 2
        sc = uhci_readw(uhci, reg)
        if not sc & PORT_CSC:
            continue
        uhci_writew(uhci, PORT_CSC, reg)  # ack the change
        if sc & PORT_CCS:
            err = uhci_port_reset(uhci, port)
            if err:
                continue
            model = _uhci_port_model(port)
            if model is None:
                continue
            descriptor = UsbDeviceDescriptor(vendor_id=0x0781,
                                             product_id=0x5150)
            device = UsbDevice(descriptor, name="flash-disk")
            device.model = model
            address = linux.usb_connect_device(device, hcd=_state.hcd_ops)
            model.set_address(address)
            device.address = address
            _state.port_devices.append(device)
        else:
            for device in list(_state.port_devices):
                linux.usb_disconnect_device(device)
                _state.port_devices.remove(device)


def _uhci_port_model(port):
    model = _state.device_model_hook
    if callable(model):
        return model(port)
    return None


_state.device_model_hook = None
_state.hcd_ops = None


# ---------------------------------------------------------------------------
# HCD registration object (what the USB core calls)
# ---------------------------------------------------------------------------

class UhciHcdOps:
    def urb_enqueue(self, urb):
        return uhci_urb_enqueue(urb)

    def urb_dequeue(self, urb):
        return uhci_urb_dequeue(urb)


# ---------------------------------------------------------------------------
# Probe / remove
# ---------------------------------------------------------------------------

def uhci_pci_probe(pdev):
    err = linux.pci_enable_device(pdev)
    if err:
        return err
    err = linux.pci_request_regions(pdev, DRV_NAME)
    if err:
        linux.pci_disable_device(pdev)
        return err

    uhci = uhci_hcd_state()
    uhci.io_addr = linux.pci_resource_start(pdev, 0)
    uhci.irq = pdev.irq
    uhci.rh_numports = UHCI_NUM_PORTS
    _state.uhci = uhci
    _state.pdev = pdev
    _state.lock = linux.spin_lock_init("uhci")

    err = uhci_reset_hc(uhci)
    if err:
        uhci_pci_probe_unwind(pdev)
        return err

    err = linux.request_irq(uhci.irq, uhci_irq, DRV_NAME, uhci)
    if err:
        uhci_pci_probe_unwind(pdev)
        return err

    err = uhci_start(uhci)
    if err:
        linux.free_irq(uhci.irq, uhci)
        uhci_pci_probe_unwind(pdev)
        return err

    _state.hcd_ops = UhciHcdOps()
    linux.usb_register_hcd(_state.hcd_ops)
    uhci_scan_ports(uhci)
    return 0


def uhci_pci_probe_unwind(pdev):
    linux.pci_release_regions(pdev)
    linux.pci_disable_device(pdev)
    _state.uhci = None


def uhci_pci_remove(pdev):
    uhci = _state.uhci
    if uhci is None:
        return
    for device in list(_state.port_devices):
        linux.usb_disconnect_device(device)
    _state.port_devices = []
    uhci_stop(uhci)
    if _state.hcd_ops is not None:
        linux.usb_unregister_hcd(_state.hcd_ops)
        _state.hcd_ops = None
    linux.free_irq(uhci.irq, uhci)
    linux.pci_release_regions(pdev)
    linux.pci_disable_device(pdev)
    _state.uhci = None


class UhciPciGlue:
    name = DRV_NAME
    id_table = ((UHCI_VENDOR_ID, UHCI_DEVICE_ID),)

    def probe(self, kernel, pdev):
        return uhci_pci_probe(pdev)

    def remove(self, kernel, pdev):
        uhci_pci_remove(pdev)

    def matches(self, func):
        return (func.vendor_id, func.device_id) in self.id_table


def uhci_hcd_init():
    return 0


def uhci_hcd_cleanup():
    return 0


def make_module(device_model_hook=None):
    from ..modulebase import LegacyDriverModule

    _state.device_model_hook = device_model_hook
    return LegacyDriverModule(
        name=DRV_NAME,
        driver_module=__import__(__name__, fromlist=["*"]),
        pci_glue=UhciPciGlue(),
        init_fn=uhci_hcd_init,
        cleanup_fn=uhci_hcd_cleanup,
    )
