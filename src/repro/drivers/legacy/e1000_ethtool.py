"""e1000_ethtool: ethtool operations and diagnostics (legacy).

Mirrors drivers/net/e1000/e1000_ethtool.c.  Contains the four functions
the paper singles out in section 5: the diagnostic tests that **wait for
an interrupt handler to change a variable** (``test_icr``).  That
explicit data race is why these functions cannot move to the decaf
driver -- the interrupt handler updates the kernel copy while the decaf
copy stays stale -- so they remain in the driver nucleus.
"""

from . import e1000_hw
from .e1000_hw import E1000_READ_REG, E1000_WRITE_REG

linux = None  # bound at insmod

ETH_GSTRING_LEN = 32

E1000_TEST_LEN = 5
E1000_STATS_LEN = 9

GSTRINGS_TEST = (
    "Register test  (offline)",
    "Eeprom test    (offline)",
    "Interrupt test (offline)",
    "Loopback test  (offline)",
    "Link test   (on/offline)",
)

GSTRINGS_STATS = (
    "rx_packets", "tx_packets", "rx_bytes", "tx_bytes",
    "rx_errors", "tx_errors", "rx_dropped", "multicast", "collisions",
)

# The interrupt-test ICR mirror the irq handler updates: the explicit
# data race of section 5.
test_icr = {"value": 0}


def e1000_get_drvinfo(netdev):
    return {
        "driver": "e1000",
        "version": "7.0.33-k2",
        "fw_version": "N/A",
        "bus_info": "0000:00:01.0",
    }


def e1000_get_settings(netdev):
    adapter = netdev.priv
    return {
        "speed": adapter.link_speed,
        "duplex": adapter.link_duplex,
        "autoneg": adapter.hw.autoneg,
        "port": "TP",
    }


def e1000_set_settings(netdev, settings):
    adapter = netdev.priv
    if "autoneg" in settings:
        adapter.hw.autoneg = 1 if settings["autoneg"] else 0
    return 0


def e1000_get_regs_len(netdev):
    return 32 * 4


def e1000_get_regs(netdev):
    adapter = netdev.priv
    hw = adapter.hw
    regs = []
    for reg in (e1000_hw.CTRL, e1000_hw.STATUS, e1000_hw.RCTL,
                e1000_hw.RDLEN, e1000_hw.RDH, e1000_hw.RDT,
                e1000_hw.TCTL, e1000_hw.TDLEN, e1000_hw.TDH,
                e1000_hw.TDT):
        regs.append(E1000_READ_REG(hw, reg))
    return regs


def e1000_get_eeprom_len(netdev):
    adapter = netdev.priv
    if adapter.hw.eeprom is None:
        e1000_hw.e1000_init_eeprom_params(adapter.hw)
    return adapter.hw.eeprom.word_size * 2


def e1000_get_eeprom(netdev, offset, length):
    adapter = netdev.priv
    words = (length + 1) // 2
    ret_val, data = e1000_hw.e1000_read_eeprom(adapter.hw, offset, words)
    if ret_val:
        return -linux.EIO, None
    return 0, data


def e1000_set_eeprom(netdev, offset, data):
    adapter = netdev.priv
    ret_val = e1000_hw.e1000_write_eeprom(adapter.hw, offset, data)
    if ret_val:
        return -linux.EIO
    # Checksum update result was historically not checked here.
    e1000_hw.e1000_update_eeprom_checksum(adapter.hw)
    return 0


def e1000_get_ringparam(netdev):
    adapter = netdev.priv
    return {
        "tx_pending": adapter.tx_ring.count,
        "rx_pending": adapter.rx_ring.count,
        "tx_max_pending": 4096,
        "rx_max_pending": 4096,
    }


def e1000_set_ringparam(netdev, tx_pending, rx_pending):
    adapter = netdev.priv
    if not 80 <= tx_pending <= 4096 or not 80 <= rx_pending <= 4096:
        return -linux.EINVAL
    adapter.tx_ring.count = tx_pending & ~7
    adapter.rx_ring.count = rx_pending & ~7
    return 0


def e1000_get_pauseparam(netdev):
    adapter = netdev.priv
    fc = adapter.hw.fc
    return {
        "autoneg": adapter.fc_autoneg,
        "rx_pause": int(fc in (e1000_hw.E1000_FC_RX_PAUSE,
                               e1000_hw.E1000_FC_FULL)),
        "tx_pause": int(fc in (e1000_hw.E1000_FC_TX_PAUSE,
                               e1000_hw.E1000_FC_FULL)),
    }


def e1000_set_pauseparam(netdev, autoneg, rx_pause, tx_pause):
    adapter = netdev.priv
    adapter.fc_autoneg = autoneg
    if rx_pause and tx_pause:
        adapter.hw.fc = e1000_hw.E1000_FC_FULL
    elif rx_pause:
        adapter.hw.fc = e1000_hw.E1000_FC_RX_PAUSE
    elif tx_pause:
        adapter.hw.fc = e1000_hw.E1000_FC_TX_PAUSE
    else:
        adapter.hw.fc = e1000_hw.E1000_FC_NONE
    ret_val = e1000_hw.e1000_force_mac_fc(adapter.hw)
    if ret_val:
        return -linux.EIO
    return 0


def e1000_get_strings(netdev, stringset):
    if stringset == "test":
        return list(GSTRINGS_TEST)
    return list(GSTRINGS_STATS)


def e1000_get_ethtool_stats(netdev):
    stats = netdev.stats
    return [
        stats.rx_packets, stats.tx_packets, stats.rx_bytes, stats.tx_bytes,
        stats.rx_errors, stats.tx_errors, stats.rx_dropped,
        stats.multicast, stats.collisions,
    ]


# ---------------------------------------------------------------------------
# Diagnostics.  The interrupt test functions keep an explicit data race
# with the irq handler and must stay in the driver nucleus.
# ---------------------------------------------------------------------------

def e1000_reg_test(adapter):
    """Pattern-test a few registers; returns 0 on pass."""
    hw = adapter.hw
    before = E1000_READ_REG(hw, e1000_hw.RDTR)
    for pattern in (0x5A5A5A5A & 0xFFFF, 0xA5A5A5A5 & 0xFFFF, 0x0000,
                    0xFFFF):
        E1000_WRITE_REG(hw, e1000_hw.RDTR, pattern)
        value = E1000_READ_REG(hw, e1000_hw.RDTR)
        if value != pattern:
            E1000_WRITE_REG(hw, e1000_hw.RDTR, before)
            return 1
    E1000_WRITE_REG(hw, e1000_hw.RDTR, before)
    return 0


def e1000_eeprom_test(adapter):
    checksum = 0
    for i in range(e1000_hw.EEPROM_CHECKSUM_REG + 1):
        ret_val, data = e1000_hw.e1000_read_eeprom(adapter.hw, i, 1)
        if ret_val:
            return 1
        checksum = (checksum + data) & 0xFFFF
    return 0 if checksum == e1000_hw.EEPROM_SUM else 1


def e1000_test_intr_handler(irq, dev_id):
    """Replacement irq handler installed during the interrupt test."""
    adapter = dev_id
    test_icr["value"] |= E1000_READ_REG(adapter.hw, e1000_hw.ICR)
    return linux.IRQ_HANDLED


def e1000_intr_test(adapter):
    """Fire each cause via ICS and *wait for the irq handler* to record
    it in test_icr -- the data-race pattern that pins this function in
    the kernel."""
    hw = adapter.hw
    netdev_irq = _irq_of(adapter)

    linux.free_irq(netdev_irq, None)
    err = linux.request_irq(netdev_irq, e1000_test_intr_handler,
                            "e1000-test", adapter)
    if err:
        return 1

    failed = 0
    for cause in (e1000_hw.E1000_ICR_LSC, e1000_hw.E1000_ICR_RXT0,
                  e1000_hw.E1000_ICR_TXDW):
        test_icr["value"] = 0
        E1000_WRITE_REG(hw, e1000_hw.IMS, cause)
        E1000_WRITE_REG(hw, e1000_hw.ICS, cause)
        linux.msleep(10)
        if not test_icr["value"] & cause:
            failed = 1
            break

    linux.free_irq(netdev_irq, adapter)
    return failed


def e1000_loopback_test(adapter):
    """MAC loopback: transmit a frame to ourselves and check it back."""
    # Our modeled parts short-circuit through the link object; treat a
    # running tx/rx pair as pass.
    return 0


def e1000_link_test(adapter):
    ret_val = e1000_hw.e1000_check_for_link(adapter.hw)
    if ret_val:
        return 1
    status = E1000_READ_REG(adapter.hw, e1000_hw.STATUS)
    return 0 if status & e1000_hw.E1000_STATUS_LU else 1


def e1000_diag_test(netdev):
    """Run the full self-test battery; returns list of 5 results."""
    adapter = netdev.priv
    results = [0] * E1000_TEST_LEN
    results[0] = e1000_reg_test(adapter)
    results[1] = e1000_eeprom_test(adapter)
    results[2] = e1000_intr_test(adapter)
    results[3] = e1000_loopback_test(adapter)
    results[4] = e1000_link_test(adapter)
    return results


def _irq_of(adapter):
    from . import e1000_main

    return e1000_main._state.pdev.irq
