"""e1000_param: module-parameter validation (legacy, C-idiomatic).

Mirrors drivers/net/e1000/e1000_param.c: each parameter is described by
an ``e1000_option`` record with a validation *type* (range, list, or
enable/disable flag) and checked by ``e1000_validate_option`` -- the
C-style switch the paper's case study rewrites as a small class
hierarchy (base checker + two derived classes).
"""

linux = None  # bound at insmod

OPT_UNSET = -1

# Validation types.
ENABLE_OPTION = 0
RANGE_OPTION = 1
LIST_OPTION = 2

E1000_MAX_TXD = 4096
E1000_MIN_TXD = 80
E1000_MAX_RXD = 4096
E1000_MIN_RXD = 80

DEFAULT_ITR = 8000
MAX_ITR = 100000
MIN_ITR = 100

AUTONEG_ADV_DEFAULT = 0x2F
FLOW_CONTROL_DEFAULT = 0xFF

SPEED_LIST = (0, 10, 100, 1000)
DUPLEX_LIST = (0, 1, 2)


class e1000_option:
    """Mirror of struct e1000_option."""

    def __init__(self, type, name, err, default, rmin=None, rmax=None,
                 valid_list=None):
        self.type = type
        self.name = name
        self.err = err
        self.default = default
        self.min = rmin
        self.max = rmax
        self.valid_list = valid_list


def e1000_validate_option(value, opt):
    """Validate one parameter value.  Returns (errno, validated_value)."""
    if value == OPT_UNSET:
        return 0, opt.default

    if opt.type == ENABLE_OPTION:
        if value in (0, 1):
            return 0, value
        linux.printk("e1000: Invalid %s specified (%d), %s"
                     % (opt.name, value, opt.err))
        return -linux.EINVAL, opt.default

    if opt.type == RANGE_OPTION:
        if opt.min <= value <= opt.max:
            return 0, value
        linux.printk("e1000: Invalid %s specified (%d), %s"
                     % (opt.name, value, opt.err))
        return -linux.EINVAL, opt.default

    if opt.type == LIST_OPTION:
        if value in opt.valid_list:
            return 0, value
        linux.printk("e1000: Invalid %s specified (%d), %s"
                     % (opt.name, value, opt.err))
        return -linux.EINVAL, opt.default

    return -linux.EINVAL, opt.default


def e1000_check_options(adapter, options=None):
    """Validate all module parameters and apply them to the adapter.

    ``options`` maps parameter names to raw values (simulating insmod
    arguments); missing entries mean unset.
    """
    options = options or {}

    err, txd = e1000_check_txd(adapter, options.get("TxDescriptors",
                                                    OPT_UNSET))
    if err == 0:
        adapter.tx_ring.count = txd

    err, rxd = e1000_check_rxd(adapter, options.get("RxDescriptors",
                                                    OPT_UNSET))
    if err == 0:
        adapter.rx_ring.count = rxd

    e1000_check_fc(adapter, options.get("FlowControl", OPT_UNSET))
    e1000_check_itr(adapter, options.get("InterruptThrottleRate",
                                         OPT_UNSET))
    e1000_check_copper_options(adapter,
                               options.get("Speed", OPT_UNSET),
                               options.get("Duplex", OPT_UNSET),
                               options.get("AutoNeg", OPT_UNSET))
    return 0


def e1000_check_txd(adapter, value):
    opt = e1000_option(RANGE_OPTION, "Transmit Descriptors",
                       "using default of %d" % 256, 256,
                       rmin=E1000_MIN_TXD, rmax=E1000_MAX_TXD)
    err, validated = e1000_validate_option(value, opt)
    # Align to multiple of 8, as hardware requires.
    return err, validated & ~7


def e1000_check_rxd(adapter, value):
    opt = e1000_option(RANGE_OPTION, "Receive Descriptors",
                       "using default of %d" % 256, 256,
                       rmin=E1000_MIN_RXD, rmax=E1000_MAX_RXD)
    err, validated = e1000_validate_option(value, opt)
    return err, validated & ~7


def e1000_check_fc(adapter, value):
    opt = e1000_option(LIST_OPTION, "Flow Control",
                       "reading default settings from EEPROM",
                       FLOW_CONTROL_DEFAULT,
                       valid_list=(0, 1, 2, 3, FLOW_CONTROL_DEFAULT))
    err, validated = e1000_validate_option(value, opt)
    adapter.hw.fc = validated
    adapter.hw.original_fc = validated
    return err


def e1000_check_itr(adapter, value):
    opt = e1000_option(RANGE_OPTION, "Interrupt Throttling Rate (ints/sec)",
                       "using default of %d" % DEFAULT_ITR, DEFAULT_ITR,
                       rmin=MIN_ITR, rmax=MAX_ITR)
    err, validated = e1000_validate_option(value, opt)
    adapter.itr = validated
    return err


def e1000_check_copper_options(adapter, speed, duplex, autoneg):
    speed_opt = e1000_option(LIST_OPTION, "Speed", "parameter ignored", 0,
                             valid_list=SPEED_LIST)
    duplex_opt = e1000_option(LIST_OPTION, "Duplex", "parameter ignored", 0,
                              valid_list=DUPLEX_LIST)
    autoneg_opt = e1000_option(ENABLE_OPTION, "AutoNeg",
                               "parameter ignored", 1)

    err, spd = e1000_validate_option(speed, speed_opt)
    err2, dpx = e1000_validate_option(duplex, duplex_opt)
    err3, an = e1000_validate_option(autoneg, autoneg_opt)

    if spd and an:
        linux.printk("e1000: AutoNeg specified along with Speed, "
                     "parameter ignored")
        an = 1
    adapter.hw.autoneg = an
    adapter.hw.forced_speed_duplex = e1000_speed_duplex_to_hw(spd, dpx)
    adapter.hw.autoneg_advertised = AUTONEG_ADV_DEFAULT
    return 0


def e1000_speed_duplex_to_hw(speed, duplex):
    table = {
        (10, 1): 0, (10, 2): 1,
        (100, 1): 2, (100, 2): 3,
    }
    return table.get((speed, duplex), 0)
