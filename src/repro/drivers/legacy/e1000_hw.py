"""e1000_hw: the E1000 chip layer (legacy, C-idiomatic).

Mirrors drivers/net/e1000/e1000_hw.c from Linux 2.6.18: every routine
returns 0 or a positive E1000 error code, and callers propagate with the
``ret_val = ...; if ret_val: return ret_val`` chains the paper's Figure 5
shows.  Deliberately preserved from the original are the places where a
return code is *ignored* -- the case-study analysis
(:mod:`repro.analysis.errorhandling`) finds these, as the authors found
28 such cases in the real driver.

The hardware is reached exclusively through ``E1000_READ_REG`` /
``E1000_WRITE_REG`` on the adapter's MMIO window.
"""

from ...core.cstruct import (
    Array,
    CStruct,
    Exp,
    Opaque,
    Ptr,
    Str,
    U8,
    U16,
    U32,
    I32,
)

linux = None  # bound at insmod

# -- error codes (e1000_hw.h) -------------------------------------------------

E1000_SUCCESS = 0
E1000_ERR_EEPROM = 1
E1000_ERR_PHY = 2
E1000_ERR_CONFIG = 3
E1000_ERR_PARAM = 4
E1000_ERR_MAC_TYPE = 5
E1000_ERR_PHY_TYPE = 6
E1000_ERR_RESET = 9
E1000_ERR_MASTER_REQUESTS_PENDING = 10
E1000_ERR_HOST_INTERFACE_COMMAND = 11
E1000_BLK_PHY_RESET = 12

# -- MAC types ------------------------------------------------------------------

E1000_82542 = 1
E1000_82543 = 2
E1000_82544 = 3
E1000_82540 = 4
E1000_82545 = 5
E1000_82546 = 6
E1000_82541 = 7
E1000_82547 = 8
E1000_UNDEFINED = 0

# -- PHY types ---------------------------------------------------------------------

E1000_PHY_M88 = 1
E1000_PHY_IGP = 2
E1000_PHY_UNDEFINED = 0

# -- register offsets (subset; must match the device model) -------------------------

CTRL = 0x00000
STATUS = 0x00008
EECD = 0x00010
EERD = 0x00014
CTRL_EXT = 0x00018
MDIC = 0x00020
FCAL = 0x00028
FCAH = 0x0002C
FCT = 0x00030
VET = 0x00038
ICR = 0x000C0
ITR = 0x000C4
ICS = 0x000C8
IMS = 0x000D0
IMC = 0x000D8
RCTL = 0x00100
FCTTV = 0x00170
TCTL = 0x00400
TIPG = 0x00410
LEDCTL = 0x00E00
PBA = 0x01000
RDBAL = 0x02800
RDBAH = 0x02804
RDLEN = 0x02808
RDH = 0x02810
RDT = 0x02818
RDTR = 0x02820
TDBAL = 0x03800
TDBAH = 0x03804
TDLEN = 0x03808
TDH = 0x03810
TDT = 0x03818
TIDV = 0x03820
RAL0 = 0x05400
RAH0 = 0x05404
MTA = 0x05200
VFTA = 0x05600
CRCERRS = 0x04000

# CTRL bits.
E1000_CTRL_FD = 0x00000001
E1000_CTRL_ASDE = 0x00000020
E1000_CTRL_SLU = 0x00000040
E1000_CTRL_SPD_1000 = 0x00000200
E1000_CTRL_FRCSPD = 0x00000800
E1000_CTRL_FRCDPX = 0x00001000
E1000_CTRL_RST = 0x04000000
E1000_CTRL_RFCE = 0x08000000
E1000_CTRL_TFCE = 0x10000000
E1000_CTRL_PHY_RST = 0x80000000

# STATUS bits.
E1000_STATUS_FD = 0x00000001
E1000_STATUS_LU = 0x00000002

# EERD bits.
E1000_EERD_START = 0x00000001
E1000_EERD_DONE = 0x00000010

# MDIC bits.
E1000_MDIC_OP_WRITE = 0x04000000
E1000_MDIC_OP_READ = 0x08000000
E1000_MDIC_READY = 0x10000000
E1000_MDIC_ERROR = 0x40000000

# Interrupt bits.
E1000_ICR_TXDW = 0x00000001
E1000_ICR_LSC = 0x00000004
E1000_ICR_RXDMT0 = 0x00000010
E1000_ICR_RXO = 0x00000040
E1000_ICR_RXT0 = 0x00000080
E1000_IMS_ENABLE_MASK = (
    E1000_ICR_TXDW | E1000_ICR_LSC | E1000_ICR_RXDMT0 | E1000_ICR_RXT0
)

# RCTL/TCTL bits.
E1000_RCTL_EN = 0x00000002
E1000_RCTL_BAM = 0x00008000
E1000_TCTL_EN = 0x00000002
E1000_TCTL_PSP = 0x00000008

# RAH valid bit.
E1000_RAH_AV = 0x80000000

# PHY registers.
PHY_CTRL = 0x00
PHY_STATUS = 0x01
PHY_ID1 = 0x02
PHY_ID2 = 0x03
PHY_AUTONEG_ADV = 0x04
PHY_LP_ABILITY = 0x05
PHY_1000T_CTRL = 0x09
PHY_1000T_STATUS = 0x0A
M88E1000_PHY_SPEC_CTRL = 0x10
M88E1000_PHY_SPEC_STATUS = 0x11
IGP01E1000_PHY_PORT_CONFIG = 0x10

MII_CR_RESET = 0x8000
MII_CR_AUTO_NEG_EN = 0x1000
MII_CR_RESTART_AUTO_NEG = 0x0200
MII_SR_LINK_STATUS = 0x0004
MII_SR_AUTONEG_COMPLETE = 0x0020

M88E1000_E_PHY_ID = 0x01410C50
IGP01E1000_E_PHY_ID = 0x02A80380
PHY_REVISION_MASK = 0xFFFFFFF0

IGP01E1000_IEEE_FORCE_GIGA = 0x0140
IGP01E1000_IEEE_RESTART_AUTONEG = 0x3300

# ffe config states (for config_dsp_after_link_change).
E1000_FFE_CONFIG_ENABLED = 0
E1000_FFE_CONFIG_ACTIVE = 1
E1000_FFE_CONFIG_BLOCKED = 2

# EEPROM layout.
EEPROM_CHECKSUM_REG = 0x3F
EEPROM_SUM = 0xBABA
EEPROM_INIT_CONTROL2_REG = 0x000F

# Flow control.
E1000_FC_NONE = 0
E1000_FC_RX_PAUSE = 1
E1000_FC_TX_PAUSE = 2
E1000_FC_FULL = 3
E1000_FC_DEFAULT = 0xFF

NODE_ADDRESS_SIZE = 6

# Device IDs -> mac types (slice of the real table; id ranges matter only
# for mac_type selection).
DEVICE_ID_TO_MAC_TYPE = {
    0x1000: E1000_82542,
    0x1001: E1000_82543,
    0x1004: E1000_82543,
    0x1008: E1000_82544,
    0x1009: E1000_82544,
    0x100C: E1000_82544,
    0x100D: E1000_82544,
    0x100E: E1000_82540,
    0x100F: E1000_82545,
    0x1010: E1000_82546,
    0x1011: E1000_82545,
    0x1012: E1000_82546,
    0x1013: E1000_82541,
    0x1014: E1000_82541,
    0x1015: E1000_82540,
    0x1016: E1000_82540,
    0x1017: E1000_82540,
    0x1018: E1000_82541,
    0x1019: E1000_82547,
    0x101A: E1000_82547,
    0x101D: E1000_82546,
    0x101E: E1000_82540,
    0x1026: E1000_82545,
    0x1027: E1000_82545,
    0x1028: E1000_82545,
    0x1075: E1000_82547,
    0x1076: E1000_82541,
    0x1077: E1000_82541,
    0x1078: E1000_82541,
    0x1079: E1000_82546,
    0x107A: E1000_82546,
    0x107B: E1000_82546,
    0x107C: E1000_82541,
}


class e1000_phy_info(CStruct):
    FIELDS = [
        ("cable_length", U16),
        ("extended_10bt_distance", U16),
        ("cable_polarity", U16),
        ("downshift", U16),
        ("polarity_correction", U16),
        ("mdix_mode", U16),
        ("local_rx", U16),
        ("remote_rx", U16),
    ]


class e1000_eeprom_info(CStruct):
    FIELDS = [
        ("word_size", U16),
        ("opcode_bits", U16),
        ("address_bits", U16),
        ("delay_usec", U16),
        ("page_size", U16),
    ]


class e1000_hw(CStruct):
    """struct e1000_hw: all chip-layer state."""

    FIELDS = [
        ("hw_addr", U32),
        ("device_id", U16),
        ("vendor_id", U16),
        ("subsystem_id", U16),
        ("subsystem_vendor_id", U16),
        ("revision_id", U8),
        ("mac_type", U8),
        ("phy_type", U8),
        ("phy_id", U32),
        ("phy_revision", U32),
        ("phy_addr", U32),
        ("mac_addr", Array(U8, NODE_ADDRESS_SIZE)),
        ("perm_mac_addr", Array(U8, NODE_ADDRESS_SIZE)),
        ("fc", U8),
        ("original_fc", U8),
        ("fc_high_water", U16),
        ("fc_low_water", U16),
        ("fc_pause_time", U16),
        ("fc_send_xon", U8),
        ("autoneg", U8),
        ("autoneg_advertised", U16),
        ("wait_autoneg_complete", U8),
        ("forced_speed_duplex", U8),
        ("max_frame_size", U32),
        ("min_frame_size", U32),
        ("media_type", U8),
        ("bus_speed", U8),
        ("bus_width", U8),
        ("get_link_status", U8),
        ("ffe_config_state", U8),
        ("dsp_config_state", U8),
        ("smart_speed", U16),
        ("mdix", U8),
        ("ledctl_default", U32),
        ("ledctl_mode1", U32),
        ("ledctl_mode2", U32),
        ("eeprom", Ptr(e1000_eeprom_info)),
        ("phy_info", Ptr(e1000_phy_info)),
    ]


# ---------------------------------------------------------------------------
# Register access
# ---------------------------------------------------------------------------

def E1000_READ_REG(hw, reg):
    return linux.readl(hw.hw_addr + reg)


def E1000_WRITE_REG(hw, reg, value):
    linux.writel(value, hw.hw_addr + reg)


def E1000_WRITE_FLUSH(hw):
    E1000_READ_REG(hw, STATUS)


def E1000_READ_REG_ARRAY(hw, reg, index):
    return linux.readl(hw.hw_addr + reg + (index << 2))


def E1000_WRITE_REG_ARRAY(hw, reg, index, value):
    linux.writel(value, hw.hw_addr + reg + (index << 2))


# ---------------------------------------------------------------------------
# MAC type and setup
# ---------------------------------------------------------------------------

def e1000_set_mac_type(hw):
    """Classify the device id into a MAC generation."""
    mac_type = DEVICE_ID_TO_MAC_TYPE.get(hw.device_id)
    if mac_type is None:
        return -E1000_ERR_MAC_TYPE
    hw.mac_type = mac_type
    return E1000_SUCCESS


def e1000_set_media_type(hw):
    hw.media_type = 1  # copper for all our modeled parts
    return E1000_SUCCESS


def e1000_reset_hw(hw):
    """Global reset: masks interrupts, resets the MAC, reloads EEPROM."""
    E1000_WRITE_REG(hw, IMC, 0xFFFFFFFF)
    E1000_WRITE_REG(hw, RCTL, 0)
    E1000_WRITE_REG(hw, TCTL, E1000_TCTL_PSP)
    E1000_WRITE_FLUSH(hw)
    linux.msleep(10)
    ctrl = E1000_READ_REG(hw, CTRL)
    E1000_WRITE_REG(hw, CTRL, ctrl | E1000_CTRL_RST)
    linux.msleep(5)
    E1000_WRITE_REG(hw, IMC, 0xFFFFFFFF)
    icr = E1000_READ_REG(hw, ICR)  # noqa: F841 -- clears pending causes
    return E1000_SUCCESS


def e1000_init_hw(hw):
    """Post-reset initialization: MAC address, multicast table, link."""
    ret_val = e1000_id_led_init(hw)
    if ret_val:
        return ret_val

    e1000_init_rx_addrs(hw)

    # Zero out the multicast table array.
    for i in range(128):
        E1000_WRITE_REG_ARRAY(hw, MTA, i, 0)

    ret_val = e1000_setup_link(hw)
    if ret_val:
        return ret_val

    e1000_clear_hw_cntrs(hw)
    return E1000_SUCCESS


def e1000_init_rx_addrs(hw):
    e1000_rar_set(hw, hw.mac_addr, 0)
    for i in range(1, 16):
        E1000_WRITE_REG_ARRAY(hw, RAL0, i << 1, 0)
        E1000_WRITE_REG_ARRAY(hw, RAL0, (i << 1) + 1, 0)


def e1000_rar_set(hw, addr, index):
    rar_low = addr[0] | (addr[1] << 8) | (addr[2] << 16) | (addr[3] << 24)
    rar_high = addr[4] | (addr[5] << 8) | E1000_RAH_AV
    E1000_WRITE_REG_ARRAY(hw, RAL0, index << 1, rar_low)
    E1000_WRITE_REG_ARRAY(hw, RAL0, (index << 1) + 1, rar_high)


def e1000_mta_set(hw, hash_value):
    hash_reg = (hash_value >> 5) & 0x7F
    hash_bit = hash_value & 0x1F
    mta = E1000_READ_REG_ARRAY(hw, MTA, hash_reg)
    mta |= 1 << hash_bit
    E1000_WRITE_REG_ARRAY(hw, MTA, hash_reg, mta)


def e1000_hash_mc_addr(hw, mc_addr):
    hash_value = (mc_addr[4] >> 4) | (mc_addr[5] << 4)
    return hash_value & 0xFFF


def e1000_write_vfta(hw, offset, value):
    E1000_WRITE_REG_ARRAY(hw, VFTA, offset, value)


def e1000_clear_vfta(hw):
    for offset in range(128):
        E1000_WRITE_REG_ARRAY(hw, VFTA, offset, 0)


def e1000_clear_hw_cntrs(hw):
    for i in range(64):
        E1000_READ_REG(hw, CRCERRS + (i << 2))


def e1000_id_led_init(hw):
    ret_val, eeprom_data = e1000_read_eeprom(hw, 0x04, 1)
    if ret_val:
        return ret_val
    hw.ledctl_default = E1000_READ_REG(hw, LEDCTL)
    hw.ledctl_mode1 = hw.ledctl_default
    hw.ledctl_mode2 = hw.ledctl_default
    return E1000_SUCCESS


# ---------------------------------------------------------------------------
# EEPROM
# ---------------------------------------------------------------------------

def e1000_init_eeprom_params(hw):
    eeprom = e1000_eeprom_info()
    eeprom.word_size = 64
    eeprom.opcode_bits = 3
    eeprom.address_bits = 6
    eeprom.delay_usec = 50
    hw.eeprom = eeprom
    return E1000_SUCCESS


def e1000_read_eeprom(hw, offset, words):
    """Read ``words`` 16-bit words; returns (ret_val, data).

    Uses the EERD register interface with a done-bit poll, as the real
    driver does on 8254x parts.
    """
    if hw.eeprom is None:
        e1000_init_eeprom_params(hw)
    if words == 0 or offset + words > hw.eeprom.word_size:
        return -E1000_ERR_EEPROM, 0

    data = []
    for i in range(words):
        E1000_WRITE_REG(hw, EERD, ((offset + i) << 8) | E1000_EERD_START)
        ret_val = e1000_poll_eerd_done(hw)
        if ret_val:
            return ret_val, 0
        data.append((E1000_READ_REG(hw, EERD) >> 16) & 0xFFFF)
    if words == 1:
        return E1000_SUCCESS, data[0]
    return E1000_SUCCESS, data


def e1000_poll_eerd_done(hw):
    for _attempt in range(100):
        if E1000_READ_REG(hw, EERD) & E1000_EERD_DONE:
            return E1000_SUCCESS
        linux.udelay(5)
    return -E1000_ERR_EEPROM


def e1000_validate_eeprom_checksum(hw):
    checksum = 0
    for i in range(EEPROM_CHECKSUM_REG + 1):
        ret_val, data = e1000_read_eeprom(hw, i, 1)
        if ret_val:
            return ret_val
        checksum = (checksum + data) & 0xFFFF
    if checksum != EEPROM_SUM:
        return -E1000_ERR_EEPROM
    return E1000_SUCCESS


def e1000_read_mac_addr(hw):
    for i in range(0, NODE_ADDRESS_SIZE, 2):
        ret_val, data = e1000_read_eeprom(hw, i >> 1, 1)
        if ret_val:
            return ret_val
        hw.perm_mac_addr[i] = data & 0xFF
        hw.perm_mac_addr[i + 1] = (data >> 8) & 0xFF
    for i in range(NODE_ADDRESS_SIZE):
        hw.mac_addr[i] = hw.perm_mac_addr[i]
    return E1000_SUCCESS


def e1000_update_eeprom_checksum(hw):
    checksum = 0
    for i in range(EEPROM_CHECKSUM_REG):
        ret_val, data = e1000_read_eeprom(hw, i, 1)
        if ret_val:
            return ret_val
        checksum = (checksum + data) & 0xFFFF
    checksum = (EEPROM_SUM - checksum) & 0xFFFF
    # NOTE: the 2.6.18 driver ignores the return value of the final
    # write here -- one of the broken-error-handling cases.
    e1000_write_eeprom(hw, EEPROM_CHECKSUM_REG, checksum)
    return E1000_SUCCESS


def e1000_write_eeprom(hw, offset, data):
    if hw.eeprom is None:
        e1000_init_eeprom_params(hw)
    if offset >= hw.eeprom.word_size:
        return -E1000_ERR_EEPROM
    # Our modeled parts have a write-protected EEPROM fed from the
    # device model; pretend the write took.
    linux.udelay(hw.eeprom.delay_usec)
    return E1000_SUCCESS


# ---------------------------------------------------------------------------
# PHY access
# ---------------------------------------------------------------------------

def e1000_read_phy_reg(hw, reg_addr):
    """Returns (ret_val, data): MDIC read with a ready poll."""
    E1000_WRITE_REG(hw, MDIC, (reg_addr << 16) | E1000_MDIC_OP_READ)
    for _attempt in range(64):
        mdic = E1000_READ_REG(hw, MDIC)
        if mdic & E1000_MDIC_READY:
            if mdic & E1000_MDIC_ERROR:
                return -E1000_ERR_PHY, 0
            return E1000_SUCCESS, mdic & 0xFFFF
        linux.udelay(50)
    return -E1000_ERR_PHY, 0


def e1000_write_phy_reg(hw, reg_addr, data):
    E1000_WRITE_REG(
        hw, MDIC, (reg_addr << 16) | E1000_MDIC_OP_WRITE | (data & 0xFFFF)
    )
    for _attempt in range(64):
        mdic = E1000_READ_REG(hw, MDIC)
        if mdic & E1000_MDIC_READY:
            if mdic & E1000_MDIC_ERROR:
                return -E1000_ERR_PHY
            return E1000_SUCCESS
        linux.udelay(50)
    return -E1000_ERR_PHY


def e1000_phy_hw_reset(hw):
    ctrl = E1000_READ_REG(hw, CTRL)
    E1000_WRITE_REG(hw, CTRL, ctrl | E1000_CTRL_PHY_RST)
    linux.msleep(10)
    E1000_WRITE_REG(hw, CTRL, ctrl)
    linux.msleep(10)
    return E1000_SUCCESS


def e1000_phy_reset(hw):
    ret_val, phy_ctrl = e1000_read_phy_reg(hw, PHY_CTRL)
    if ret_val:
        return ret_val
    ret_val = e1000_write_phy_reg(hw, PHY_CTRL, phy_ctrl | MII_CR_RESET)
    if ret_val:
        return ret_val
    linux.udelay(1)
    return E1000_SUCCESS


def e1000_detect_gig_phy(hw):
    """Probe the PHY ID registers and classify the PHY."""
    ret_val, phy_id_high = e1000_read_phy_reg(hw, PHY_ID1)
    if ret_val:
        return ret_val
    linux.udelay(20)
    ret_val, phy_id_low = e1000_read_phy_reg(hw, PHY_ID2)
    if ret_val:
        return ret_val
    hw.phy_id = ((phy_id_high << 16) | phy_id_low) & 0xFFFFFFFF
    hw.phy_revision = hw.phy_id & ~PHY_REVISION_MASK
    masked = hw.phy_id & PHY_REVISION_MASK
    if masked == (M88E1000_E_PHY_ID & PHY_REVISION_MASK):
        hw.phy_type = E1000_PHY_M88
    elif masked == (IGP01E1000_E_PHY_ID & PHY_REVISION_MASK):
        hw.phy_type = E1000_PHY_IGP
    else:
        hw.phy_type = E1000_PHY_UNDEFINED
        return -E1000_ERR_PHY_TYPE
    return E1000_SUCCESS


def e1000_phy_get_info(hw):
    info = e1000_phy_info()
    if hw.phy_type == E1000_PHY_IGP:
        ret_val = e1000_phy_igp_get_info(hw, info)
    else:
        ret_val = e1000_phy_m88_get_info(hw, info)
    if ret_val:
        return ret_val
    hw.phy_info = info
    return E1000_SUCCESS


def e1000_phy_igp_get_info(hw, phy_info):
    ret_val, data = e1000_read_phy_reg(hw, IGP01E1000_PHY_PORT_CONFIG)
    if ret_val:
        return ret_val
    phy_info.mdix_mode = (data >> 5) & 1
    ret_val, status = e1000_read_phy_reg(hw, PHY_1000T_STATUS)
    if ret_val:
        return ret_val
    phy_info.local_rx = (status >> 13) & 1
    phy_info.remote_rx = (status >> 12) & 1
    return E1000_SUCCESS


def e1000_phy_m88_get_info(hw, phy_info):
    ret_val, data = e1000_read_phy_reg(hw, M88E1000_PHY_SPEC_CTRL)
    if ret_val:
        return ret_val
    phy_info.extended_10bt_distance = (data >> 7) & 1
    phy_info.polarity_correction = (data >> 1) & 1
    ret_val, polarity = e1000_check_polarity(hw)
    if ret_val:
        return ret_val
    phy_info.cable_polarity = polarity
    ret_val, downshift = e1000_check_downshift(hw)
    if ret_val:
        return ret_val
    phy_info.downshift = downshift
    ret_val, min_len, _max_len = e1000_get_cable_length(hw)
    if ret_val:
        return ret_val
    phy_info.cable_length = min_len
    return E1000_SUCCESS


def e1000_power_up_phy_hw(hw):
    ret_val, mii_reg = e1000_read_phy_reg(hw, PHY_CTRL)
    if ret_val:
        return ret_val
    mii_reg &= ~0x0800  # clear power-down
    # 2.6.18 ignores this write's return value (broken error handling).
    e1000_write_phy_reg(hw, PHY_CTRL, mii_reg)
    return E1000_SUCCESS


def e1000_power_down_phy_hw(hw):
    ret_val, mii_reg = e1000_read_phy_reg(hw, PHY_CTRL)
    if ret_val:
        return ret_val
    mii_reg |= 0x0800
    # Return value ignored in the original here too.
    e1000_write_phy_reg(hw, PHY_CTRL, mii_reg)
    return E1000_SUCCESS


# ---------------------------------------------------------------------------
# Link setup
# ---------------------------------------------------------------------------

def e1000_setup_link(hw):
    """Determine flow control and configure the link (copper path)."""
    if hw.fc == E1000_FC_DEFAULT:
        ret_val, eeprom_data = e1000_read_eeprom(hw, EEPROM_INIT_CONTROL2_REG, 1)
        if ret_val:
            return -E1000_ERR_EEPROM
        if eeprom_data & 0x3000:
            hw.fc = E1000_FC_FULL
        else:
            hw.fc = E1000_FC_NONE
    hw.original_fc = hw.fc

    ret_val = e1000_setup_copper_link(hw)
    if ret_val:
        return ret_val

    E1000_WRITE_REG(hw, FCT, 0x8808)
    E1000_WRITE_REG(hw, FCAH, 0x0100)
    E1000_WRITE_REG(hw, FCAL, 0x00C28001)
    E1000_WRITE_REG(hw, FCTTV, hw.fc_pause_time)
    return E1000_SUCCESS


def e1000_setup_copper_link(hw):
    ctrl = E1000_READ_REG(hw, CTRL)
    ctrl |= E1000_CTRL_SLU
    ctrl &= ~(E1000_CTRL_FRCSPD | E1000_CTRL_FRCDPX)
    E1000_WRITE_REG(hw, CTRL, ctrl)

    ret_val = e1000_detect_gig_phy(hw)
    if ret_val:
        return ret_val

    if hw.autoneg:
        ret_val = e1000_copper_link_autoneg(hw)
        if ret_val:
            return ret_val
    else:
        ret_val = e1000_phy_force_speed_duplex(hw)
        if ret_val:
            return ret_val

    for _i in range(10):
        ret_val, phy_status = e1000_read_phy_reg(hw, PHY_STATUS)
        if ret_val:
            return ret_val
        if phy_status & MII_SR_LINK_STATUS:
            ret_val = e1000_config_mac_to_phy(hw)
            if ret_val:
                return ret_val
            ret_val = e1000_config_fc_after_link_up(hw)
            if ret_val:
                return ret_val
            return E1000_SUCCESS
        linux.msleep(10)
    return E1000_SUCCESS  # link may come up later; not an error


def e1000_copper_link_autoneg(hw):
    ret_val = e1000_phy_setup_autoneg(hw)
    if ret_val:
        return ret_val
    ret_val, phy_ctrl = e1000_read_phy_reg(hw, PHY_CTRL)
    if ret_val:
        return ret_val
    phy_ctrl |= MII_CR_AUTO_NEG_EN | MII_CR_RESTART_AUTO_NEG
    ret_val = e1000_write_phy_reg(hw, PHY_CTRL, phy_ctrl)
    if ret_val:
        return ret_val
    if hw.wait_autoneg_complete:
        ret_val = e1000_wait_autoneg(hw)
        if ret_val:
            return ret_val
    hw.get_link_status = 1
    return E1000_SUCCESS


def e1000_phy_setup_autoneg(hw):
    ret_val, adv = e1000_read_phy_reg(hw, PHY_AUTONEG_ADV)
    if ret_val:
        return ret_val
    adv |= 0x01E0  # advertise 10/100 full+half
    ret_val = e1000_write_phy_reg(hw, PHY_AUTONEG_ADV, adv)
    if ret_val:
        return ret_val
    ret_val = e1000_write_phy_reg(hw, PHY_1000T_CTRL, 0x0300)
    if ret_val:
        return ret_val
    return E1000_SUCCESS


def e1000_phy_force_speed_duplex(hw):
    ret_val, phy_ctrl = e1000_read_phy_reg(hw, PHY_CTRL)
    if ret_val:
        return ret_val
    phy_ctrl &= ~MII_CR_AUTO_NEG_EN
    ret_val = e1000_write_phy_reg(hw, PHY_CTRL, phy_ctrl)
    if ret_val:
        return ret_val
    return E1000_SUCCESS


def e1000_wait_autoneg(hw):
    for _i in range(45):
        ret_val, phy_status = e1000_read_phy_reg(hw, PHY_STATUS)
        if ret_val:
            return ret_val
        if phy_status & MII_SR_AUTONEG_COMPLETE:
            return E1000_SUCCESS
        linux.msleep(10)
    return E1000_SUCCESS  # original also tolerates incomplete autoneg


def e1000_config_mac_to_phy(hw):
    ctrl = E1000_READ_REG(hw, CTRL)
    ctrl |= E1000_CTRL_FRCSPD | E1000_CTRL_FRCDPX
    ret_val, status = e1000_read_phy_reg(hw, M88E1000_PHY_SPEC_STATUS)
    if ret_val:
        return ret_val
    if status & 0x2000:
        ctrl |= E1000_CTRL_FD
    E1000_WRITE_REG(hw, CTRL, ctrl | E1000_CTRL_SPD_1000)
    return E1000_SUCCESS


def e1000_config_fc_after_link_up(hw):
    ret_val = e1000_force_mac_fc(hw)
    if ret_val:
        return ret_val
    return E1000_SUCCESS


def e1000_force_mac_fc(hw):
    ctrl = E1000_READ_REG(hw, CTRL)
    if hw.fc == E1000_FC_NONE:
        ctrl &= ~(E1000_CTRL_RFCE | E1000_CTRL_TFCE)
    elif hw.fc == E1000_FC_RX_PAUSE:
        ctrl &= ~E1000_CTRL_TFCE
        ctrl |= E1000_CTRL_RFCE
    elif hw.fc == E1000_FC_TX_PAUSE:
        ctrl &= ~E1000_CTRL_RFCE
        ctrl |= E1000_CTRL_TFCE
    elif hw.fc == E1000_FC_FULL:
        ctrl |= E1000_CTRL_RFCE | E1000_CTRL_TFCE
    else:
        return -E1000_ERR_CONFIG
    E1000_WRITE_REG(hw, CTRL, ctrl)
    return E1000_SUCCESS


def e1000_check_for_link(hw):
    """Poll link state; updates get_link_status."""
    ret_val, phy_status = e1000_read_phy_reg(hw, PHY_STATUS)
    if ret_val:
        return ret_val
    # Link status is latched-low: read twice.
    ret_val, phy_status = e1000_read_phy_reg(hw, PHY_STATUS)
    if ret_val:
        return ret_val
    if phy_status & MII_SR_LINK_STATUS:
        hw.get_link_status = 0
        # Dsp config sequence on link-up for IGP parts; its internal
        # errors were historically dropped on the floor here.
        e1000_config_dsp_after_link_change(hw, 1)
    else:
        hw.get_link_status = 1
        e1000_config_dsp_after_link_change(hw, 0)
    return E1000_SUCCESS


def e1000_get_speed_and_duplex(hw):
    """Returns (ret_val, speed, duplex)."""
    status = E1000_READ_REG(hw, STATUS)
    speed = 1000
    duplex = 1 if status & E1000_STATUS_FD else 0
    return E1000_SUCCESS, speed, duplex


def e1000_config_dsp_after_link_change(hw, link_up):
    """The Figure 5 function: IGP DSP tuning around link transitions."""
    if hw.phy_type != E1000_PHY_IGP:
        return E1000_SUCCESS

    if link_up:
        ret_val, speed, duplex = e1000_get_speed_and_duplex(hw)
        if ret_val:
            return ret_val
        if speed != 1000:
            return E1000_SUCCESS
        if hw.dsp_config_state == E1000_FFE_CONFIG_ENABLED:
            # Original writes a sequence of DSP registers, checking each.
            ret_val, phy_data = e1000_read_phy_reg(hw, 0x0019)
            if ret_val:
                return ret_val
            ret_val = e1000_write_phy_reg(hw, 0x0019, phy_data | 0x0008)
            if ret_val:
                return ret_val
            hw.dsp_config_state = E1000_FFE_CONFIG_ACTIVE
    else:
        if hw.ffe_config_state == E1000_FFE_CONFIG_ACTIVE:
            ret_val, phy_saved_data = e1000_read_phy_reg(hw, 0x2F5B)
            if ret_val:
                return ret_val
            ret_val = e1000_write_phy_reg(hw, 0x2F5B, 0x0003)
            if ret_val:
                return ret_val
            linux.msec_delay_irq(20)
            ret_val = e1000_write_phy_reg(hw, 0x0000,
                                          IGP01E1000_IEEE_FORCE_GIGA)
            if ret_val:
                return ret_val
            ret_val = e1000_write_phy_reg(hw, 0x2F5B, phy_saved_data)
            if ret_val:
                return ret_val
            hw.ffe_config_state = E1000_FFE_CONFIG_ENABLED
    return E1000_SUCCESS


# ---------------------------------------------------------------------------
# PHY diagnostics (cable length, polarity, downshift, smartspeed)
# ---------------------------------------------------------------------------

# M88 spec-status cable length codes -> (min, max) meters.
M88_CABLE_LENGTH = ((0, 50), (50, 80), (80, 110), (110, 140), (140, 999))
IGP_AGC_REG = 0x12
SMART_SPEED_MAX = 15

M88E1000_PSSR_CABLE_LENGTH_SHIFT = 7
M88E1000_PSSR_REV_POLARITY = 0x0002
M88E1000_PSSR_DOWNSHIFT = 0x0020
IGP01E1000_PSSR_POLARITY_REVERSED = 0x0002


def e1000_get_cable_length(hw):
    """Estimate cable length; returns (ret_val, min_m, max_m)."""
    if hw.phy_type == E1000_PHY_M88:
        ret_val, phy_data = e1000_read_phy_reg(hw, M88E1000_PHY_SPEC_STATUS)
        if ret_val:
            return ret_val, 0, 0
        index = (phy_data >> M88E1000_PSSR_CABLE_LENGTH_SHIFT) & 0x7
        if index >= len(M88_CABLE_LENGTH):
            return -E1000_ERR_PHY, 0, 0
        return E1000_SUCCESS, M88_CABLE_LENGTH[index][0], \
            M88_CABLE_LENGTH[index][1]
    # IGP parts estimate from the AGC registers.
    ret_val, agc = e1000_read_phy_reg(hw, IGP_AGC_REG)
    if ret_val:
        return ret_val, 0, 0
    length = (agc & 0x7F) * 5
    return E1000_SUCCESS, max(0, length - 10), length + 10


def e1000_check_polarity(hw):
    """Cable polarity; returns (ret_val, reversed_bool)."""
    if hw.phy_type == E1000_PHY_M88:
        ret_val, phy_data = e1000_read_phy_reg(hw, M88E1000_PHY_SPEC_STATUS)
        if ret_val:
            return ret_val, 0
        return E1000_SUCCESS, 1 if phy_data & M88E1000_PSSR_REV_POLARITY \
            else 0
    ret_val, phy_data = e1000_read_phy_reg(hw, PHY_STATUS)
    if ret_val:
        return ret_val, 0
    return E1000_SUCCESS, 1 if phy_data & IGP01E1000_PSSR_POLARITY_REVERSED \
        else 0


def e1000_check_downshift(hw):
    """Did the PHY downshift from the negotiated speed?  Returns
    (ret_val, downshifted_bool)."""
    if hw.phy_type == E1000_PHY_M88:
        ret_val, phy_data = e1000_read_phy_reg(hw, M88E1000_PHY_SPEC_STATUS)
        if ret_val:
            return ret_val, 0
        return E1000_SUCCESS, 1 if phy_data & M88E1000_PSSR_DOWNSHIFT else 0
    return E1000_SUCCESS, 0


def e1000_validate_mdi_setting(hw):
    """Forced MDI with autoneg disabled is an invalid combination."""
    if not hw.autoneg and hw.mdix:
        return -E1000_ERR_CONFIG
    return E1000_SUCCESS


def e1000_smartspeed(hw):
    """SmartSpeed workaround: if the link keeps failing to come up at
    gigabit with a downshift, temporarily stop advertising 1000 Mb/s
    (then re-enable after SMART_SPEED_MAX cycles)."""
    if hw.phy_type != E1000_PHY_IGP or not hw.autoneg:
        return E1000_SUCCESS

    if hw.smart_speed == 0:
        ret_val, downshift = e1000_check_downshift(hw)
        if ret_val:
            return ret_val
        if not downshift:
            return E1000_SUCCESS
        ret_val, phy_data = e1000_read_phy_reg(hw, PHY_1000T_CTRL)
        if ret_val:
            return ret_val
        phy_data &= ~0x0300  # stop advertising gigabit
        ret_val = e1000_write_phy_reg(hw, PHY_1000T_CTRL, phy_data)
        if ret_val:
            return ret_val
        ret_val, phy_ctrl = e1000_read_phy_reg(hw, PHY_CTRL)
        if ret_val:
            return ret_val
        # Restart autoneg; original drops this write's return too.
        e1000_write_phy_reg(
            hw, PHY_CTRL,
            phy_ctrl | MII_CR_AUTO_NEG_EN | MII_CR_RESTART_AUTO_NEG)
        hw.smart_speed = 1
        return E1000_SUCCESS

    hw.smart_speed += 1
    if hw.smart_speed > SMART_SPEED_MAX:
        ret_val, phy_data = e1000_read_phy_reg(hw, PHY_1000T_CTRL)
        if ret_val:
            return ret_val
        ret_val = e1000_write_phy_reg(hw, PHY_1000T_CTRL,
                                      phy_data | 0x0300)
        if ret_val:
            return ret_val
        hw.smart_speed = 0
    return E1000_SUCCESS


# ---------------------------------------------------------------------------
# LEDs
# ---------------------------------------------------------------------------

def e1000_setup_led(hw):
    hw.ledctl_default = E1000_READ_REG(hw, LEDCTL)
    # Original ignores the PHY write result while configuring the LED.
    e1000_write_phy_reg(hw, 0x0018, 0x0021)
    E1000_WRITE_REG(hw, LEDCTL, hw.ledctl_mode1)
    return E1000_SUCCESS


def e1000_cleanup_led(hw):
    # PHY write result ignored in the original.
    e1000_write_phy_reg(hw, 0x0018, 0x0020)
    E1000_WRITE_REG(hw, LEDCTL, hw.ledctl_default)
    return E1000_SUCCESS


def e1000_led_on(hw):
    E1000_WRITE_REG(hw, LEDCTL, hw.ledctl_mode2)
    return E1000_SUCCESS


def e1000_led_off(hw):
    E1000_WRITE_REG(hw, LEDCTL, hw.ledctl_mode1)
    return E1000_SUCCESS


# ---------------------------------------------------------------------------
# Misc info
# ---------------------------------------------------------------------------

def e1000_get_bus_info(hw):
    hw.bus_speed = 3  # PCI 66 MHz
    hw.bus_width = 2  # 32-bit
    return E1000_SUCCESS


def e1000_reset_adaptive(hw):
    # Adaptive IFS state; our modeled parts keep defaults.
    return E1000_SUCCESS


def e1000_update_adaptive(hw):
    return E1000_SUCCESS


def e1000_tbi_accept(hw, status, errors, length):
    # TBI workaround applies only to fiber parts; always reject.
    return 0
