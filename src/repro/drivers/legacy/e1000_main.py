"""e1000_main: Intel PRO/1000 network driver body (legacy, C-idiomatic).

Mirrors drivers/net/e1000/e1000_main.c from Linux 2.6.18.1: descriptor
rings in DMA memory, an interrupt handler that cleans both rings, a
watchdog timer every two seconds, and the goto-label error-unwind chains
in ``e1000_open`` that the paper's Figure 4 converts to nested
exceptions.  The ``e1000_adapter`` structure carries the exact Figure 3
annotation example (``config_space`` with ``exp(PCI_LEN)``).
"""

import struct as _pystruct

from ...core.cstruct import (
    Array,
    CStruct,
    Exp,
    Opaque,
    Ptr,
    Str,
    Struct,
    U8,
    U16,
    U32,
    U64,
    I32,
)
from . import e1000_hw
from .e1000_hw import (
    E1000_READ_REG,
    E1000_SUCCESS,
    E1000_WRITE_REG,
    E1000_WRITE_FLUSH,
)

linux = None  # bound at insmod (shared with e1000_hw via module glue)

DRV_NAME = "e1000"
DRV_VERSION = "7.0.33-k2"

# Interrupt mode: True = NAPI polling (the default), False = the original
# per-packet interrupt path, kept selectable for the datapath ablation.
napi_mode = True
E1000_NAPI_WEIGHT = 64


def set_napi_mode(enabled):
    global napi_mode
    napi_mode = bool(enabled)


# Loop mode: True = per-ring compiled rx/tx closures (pre-bound register
# accessors, pooled alloc/recycle and batched stats resolved once at
# ring setup), False = the interpreted loops kept as the measured
# ablation baseline.  Byte-identical behaviour either way.
compiled_mode = True


def set_compiled_mode(enabled):
    global compiled_mode
    compiled_mode = bool(enabled)


# RX/TX queue pairs (multi-queue datapath).  Queue 0 uses the legacy
# register map; queue q's interrupt and ring registers sit at the
# queue-0 offset plus q * E1000_QUEUE_STRIDE and raise irq + q --
# MSI-X-style per-queue vectors.  1 = the classic single-queue driver.
num_queues_mode = 1
E1000_QUEUE_STRIDE = 0x100


def set_num_queues(n):
    global num_queues_mode
    num_queues_mode = max(1, int(n))


def e1000_num_queues():
    return num_queues_mode

E1000_VENDOR_ID = 0x8086

E1000_DEFAULT_TXD = 256
E1000_DEFAULT_RXD = 256
E1000_RXBUFFER_2048 = 2048
E1000_TX_DESC_SIZE = 16
E1000_RX_DESC_SIZE = 16

# TX descriptor command/status bits.
E1000_TXD_CMD_EOP = 0x01
E1000_TXD_CMD_IFCS = 0x02
E1000_TXD_CMD_RS = 0x08
E1000_TXD_STAT_DD = 0x01

# RX descriptor status bits.
E1000_RXD_STAT_DD = 0x01
E1000_RXD_STAT_EOP = 0x02

PCI_LEN = 64  # dwords of config space saved (the Fig. 3 constant)


class e1000_tx_ring(CStruct):
    FIELDS = [
        ("count", U32),
        ("next_to_use", U32),
        ("next_to_clean", U32),
        ("tdh", U32),
        ("tdt", U32),
        ("desc", Ptr("e1000_tx_ring"), Opaque()),      # DMA handle
        ("buffer_region", Ptr("e1000_tx_ring"), Opaque()),
    ]


class e1000_rx_ring(CStruct):
    FIELDS = [
        ("count", U32),
        ("next_to_use", U32),
        ("next_to_clean", U32),
        ("rdh", U32),
        ("rdt", U32),
        ("desc", Ptr("e1000_rx_ring"), Opaque()),
        ("buffer_region", Ptr("e1000_rx_ring"), Opaque()),
    ]


class net_stats_mirror(CStruct):
    FIELDS = [
        ("tx_packets", U64),
        ("tx_bytes", U64),
        ("rx_packets", U64),
        ("rx_bytes", U64),
        ("tx_errors", U64),
        ("rx_errors", U64),
        ("rx_dropped", U64),
        ("multicast", U64),
        ("collisions", U64),
    ]


class e1000_adapter(CStruct):
    """struct e1000_adapter -- the Figure 3 structure.

    ``config_space`` carries the paper's exact annotation:
    ``uint32_t * __attribute__((exp(PCI_LEN))) config_space``.
    """

    FIELDS = [
        ("netdev", Ptr("e1000_adapter"), Opaque()),
        ("pdev", Ptr("e1000_adapter"), Opaque()),
        ("hw", Struct(e1000_hw.e1000_hw)),
        ("tx_ring", Struct(e1000_tx_ring)),
        ("rx_ring", Struct(e1000_rx_ring)),
        ("test_tx_ring", Struct(e1000_tx_ring)),
        ("test_rx_ring", Struct(e1000_rx_ring)),
        ("config_space", Ptr(U32), Exp("PCI_LEN")),
        ("msg_enable", I32),
        ("bd_number", U32),
        ("rx_buffer_len", U32),
        ("num_tx_queues", U32),
        ("num_rx_queues", U32),
        ("tx_timeout_count", U32),
        ("restart_queue", U32),
        ("link_speed", U16),
        ("link_duplex", U16),
        ("itr", U32),
        ("fc_autoneg", U8),
        ("net_stats", Struct(net_stats_mirror)),
        ("part_num", Str(16)),
    ]


class e1000_state:
    """Non-marshaled kernel state: locks, timers, DMA regions, netdev."""

    def __init__(self):
        self.adapter = None
        self.netdev = None
        self.pdev = None
        self.tx_lock = None
        self.watchdog_timer = None
        self.irq_requested = False
        self.device_model = None
        self.napi = None
        # Queues >= 1 (multi-queue mode): their rings never enter the
        # marshaled e1000_adapter -- they are kernel-side state, so the
        # XPC wire format is identical at any queue count.
        self.extra_tx_rings = []
        self.extra_rx_rings = []
        self.extra_napis = []
        self.extra_vectors = []
        # Per-queue compiled NAPI polls (the loop compiler); built by
        # e1000_up once the rings are configured, dropped by e1000_down.
        self.compiled_polls = None
        # Compiled queue-0 interrupt handler (both irq modes); in the
        # per-packet-interrupt ablation this carries the whole rx path.
        self.compiled_intr = None


_state = e1000_state()

from ...core.cstruct import CONSTANTS as _CONSTANTS

_CONSTANTS.setdefault("PCI_LEN", PCI_LEN)


# ---------------------------------------------------------------------------
# Probe / remove
# ---------------------------------------------------------------------------

def e1000_probe(pdev):
    """Device insertion: the long bring-up path with unwind chains."""
    err = linux.pci_enable_device(pdev)
    if err:
        return err

    err = linux.pci_request_regions(pdev, DRV_NAME)
    if err:
        linux.pci_disable_device(pdev)
        return err

    linux.pci_set_master(pdev)

    netdev = linux.alloc_etherdev("eth%d")
    adapter = e1000_adapter()
    adapter.msg_enable = 7
    netdev.priv = adapter
    _state.adapter = adapter
    _state.netdev = netdev
    _state.pdev = pdev
    _state.tx_lock = linux.spin_lock_init("e1000-tx")

    adapter.hw.hw_addr = linux.pci_resource_start(pdev, 0)
    adapter.hw.device_id = pdev.device_id
    adapter.hw.vendor_id = pdev.vendor_id
    adapter.hw.revision_id = pdev.revision
    adapter.hw.subsystem_id = pdev.subsystem_device
    adapter.hw.subsystem_vendor_id = pdev.subsystem_vendor
    adapter.hw.fc = e1000_hw.E1000_FC_DEFAULT
    adapter.hw.autoneg = 1
    adapter.hw.wait_autoneg_complete = 0

    netdev.open = e1000_open
    netdev.stop = e1000_close
    netdev.hard_start_xmit = e1000_xmit_frame
    netdev.get_stats = e1000_get_stats
    netdev.set_multicast_list = e1000_set_multi
    netdev.set_mac_address = e1000_set_mac
    netdev.change_mtu = e1000_change_mtu
    netdev.tx_timeout = e1000_tx_timeout
    netdev.irq = pdev.irq
    netdev.base_addr = adapter.hw.hw_addr

    err = e1000_sw_init(adapter)
    if err:
        e1000_probe_unwind(pdev)
        return err

    from . import e1000_param

    e1000_param.e1000_check_options(adapter)

    err = e1000_hw.e1000_set_mac_type(adapter.hw)
    if err:
        e1000_probe_unwind(pdev)
        return err

    e1000_hw.e1000_set_media_type(adapter.hw)
    e1000_hw.e1000_get_bus_info(adapter.hw)

    err = e1000_hw.e1000_reset_hw(adapter.hw)
    if err:
        e1000_probe_unwind(pdev)
        return err

    if e1000_hw.e1000_validate_eeprom_checksum(adapter.hw) < 0:
        linux.printk("e1000: The EEPROM checksum is not valid")
        e1000_probe_unwind(pdev)
        return -linux.EIO

    err = e1000_hw.e1000_read_mac_addr(adapter.hw)
    if err:
        e1000_probe_unwind(pdev)
        return -linux.EIO

    netdev.dev_addr = bytes(adapter.hw.mac_addr)

    e1000_save_config_space(adapter, pdev)

    _state.watchdog_timer = linux.init_timer(
        e1000_watchdog, adapter, name="e1000-watchdog"
    )

    e1000_reset(adapter)

    err = linux.register_netdev(netdev)
    if err:
        e1000_probe_unwind(pdev)
        return err

    linux.printk("e1000: %s: Intel(R) PRO/1000 Network Connection"
                 % netdev.name)
    return 0


def e1000_probe_unwind(pdev):
    linux.pci_release_regions(pdev)
    linux.pci_disable_device(pdev)
    _state.adapter = None
    _state.netdev = None


def e1000_remove(pdev):
    netdev = _state.netdev
    if netdev is None:
        return
    if _state.watchdog_timer is not None:
        linux.del_timer_sync(_state.watchdog_timer)
    linux.unregister_netdev(netdev)
    linux.pci_release_regions(pdev)
    linux.pci_disable_device(pdev)
    _state.adapter = None
    _state.netdev = None


def e1000_sw_init(adapter):
    adapter.rx_buffer_len = E1000_RXBUFFER_2048
    adapter.num_tx_queues = num_queues_mode
    adapter.num_rx_queues = num_queues_mode
    adapter.tx_ring.count = E1000_DEFAULT_TXD
    adapter.rx_ring.count = E1000_DEFAULT_RXD
    adapter.hw.max_frame_size = 1518
    adapter.hw.min_frame_size = 64
    return 0


def e1000_save_config_space(adapter, pdev):
    space = []
    for i in range(PCI_LEN):
        space.append(linux.pci_read_config_dword(pdev, (i * 4) % 256))
    adapter.config_space = space


def e1000_restore_config_space(adapter, pdev):
    if adapter.config_space is None:
        return
    for i in range(PCI_LEN):
        linux.pci_write_config_dword(pdev, (i * 4) % 256,
                                     adapter.config_space[i])


# ---------------------------------------------------------------------------
# Open / close -- the Figure 4 unwind chains
# ---------------------------------------------------------------------------

def e1000_open(netdev):
    """Bring the interface up.

    The original uses goto labels (err_req_irq, err_up, ...); here the
    same unwind order is expressed with early returns calling the
    cleanup functions in reverse acquisition order.
    """
    adapter = netdev.priv

    err = e1000_setup_all_tx_resources(adapter)
    if err:
        return err

    err = e1000_setup_all_rx_resources(adapter)
    if err:
        e1000_free_all_tx_resources(adapter)
        return err

    err = e1000_request_irq(adapter)
    if err:
        e1000_free_all_rx_resources(adapter)
        e1000_free_all_tx_resources(adapter)
        return err

    e1000_power_up_phy(adapter)

    err = e1000_up(adapter)
    if err:
        e1000_power_down_phy(adapter)
        e1000_free_irq(adapter)
        e1000_free_all_rx_resources(adapter)
        e1000_free_all_tx_resources(adapter)
        e1000_reset(adapter)
        return err

    return 0


def e1000_close(netdev):
    adapter = netdev.priv
    e1000_down(adapter)
    # NAPI must be gone (and the IRQ line unmasked) before free_irq:
    # free_irq does not reset the line's disable depth.
    e1000_napi_del()
    e1000_power_down_phy(adapter)
    e1000_free_irq(adapter)
    e1000_free_all_rx_resources(adapter)
    e1000_free_all_tx_resources(adapter)
    return 0


def e1000_request_irq(adapter):
    err = linux.request_irq(_state.pdev.irq, e1000_intr, DRV_NAME,
                            _state.netdev)
    if err:
        return err
    _state.irq_requested = True
    err = e1000_request_extra_vectors()
    if err:
        e1000_free_irq(adapter)
        return err
    e1000_set_irq_affinity()
    return 0


def e1000_request_extra_vectors():
    """Request one vector per extra queue (irq + q, MSI-X style)."""
    irq0 = _state.pdev.irq
    for q in range(1, e1000_num_queues()):
        def vector(_irq, dev_id, q=q):
            return e1000_intr_queue(q)
        err = linux.request_irq(irq0 + q, vector, "%s-q%d" % (DRV_NAME, q),
                                _state.netdev)
        if err:
            e1000_free_extra_vectors()
            return err
        _state.extra_vectors.append(irq0 + q)
    return 0


def e1000_free_extra_vectors():
    for irq in _state.extra_vectors:
        linux.free_irq(irq, _state.netdev)
    del _state.extra_vectors[:]


def e1000_set_irq_affinity():
    """Spread the per-queue vectors across CPUs (queue q -> q mod N).

    The NAPI context for queue q is homed on the same CPU, so the whole
    per-queue datapath -- hardirq, softirq poll, rx stack -- runs there.
    """
    ncpus = linux.num_online_cpus()
    if ncpus <= 1:
        return
    irq0 = _state.pdev.irq
    for q in range(e1000_num_queues()):
        linux.irq_set_affinity(irq0 + q, q % ncpus)


def e1000_free_irq(adapter):
    e1000_free_extra_vectors()
    if _state.irq_requested:
        linux.free_irq(_state.pdev.irq, _state.netdev)
        _state.irq_requested = False


def e1000_power_up_phy(adapter):
    e1000_hw.e1000_power_up_phy_hw(adapter.hw)


def e1000_power_down_phy(adapter):
    e1000_hw.e1000_power_down_phy_hw(adapter.hw)


# ---------------------------------------------------------------------------
# Resource setup / teardown
# ---------------------------------------------------------------------------

def e1000_setup_all_tx_resources(adapter):
    err = e1000_setup_tx_resources(adapter, adapter.tx_ring)
    if err:
        return err
    for _q in range(1, e1000_num_queues()):
        ring = e1000_tx_ring()
        ring.count = E1000_DEFAULT_TXD
        err = e1000_setup_tx_resources(adapter, ring)
        if err:
            e1000_free_all_tx_resources(adapter)
            return err
        _state.extra_tx_rings.append(ring)
    return 0


def e1000_setup_tx_resources(adapter, tx_ring):
    size = tx_ring.count * E1000_TX_DESC_SIZE
    tx_ring.desc = linux.dma_alloc_coherent(size, owner=DRV_NAME)
    if tx_ring.desc is None:
        return -linux.ENOMEM
    tx_ring.buffer_region = linux.dma_alloc_coherent(
        tx_ring.count * E1000_RXBUFFER_2048, owner=DRV_NAME
    )
    if tx_ring.buffer_region is None:
        linux.dma_free_coherent(tx_ring.desc)
        tx_ring.desc = None
        return -linux.ENOMEM
    tx_ring.next_to_use = 0
    tx_ring.next_to_clean = 0
    return 0


def e1000_setup_all_rx_resources(adapter):
    err = e1000_setup_rx_resources(adapter, adapter.rx_ring)
    if err:
        return err
    for _q in range(1, e1000_num_queues()):
        ring = e1000_rx_ring()
        ring.count = E1000_DEFAULT_RXD
        err = e1000_setup_rx_resources(adapter, ring)
        if err:
            e1000_free_all_rx_resources(adapter)
            return err
        _state.extra_rx_rings.append(ring)
    return 0


def e1000_setup_rx_resources(adapter, rx_ring):
    size = rx_ring.count * E1000_RX_DESC_SIZE
    rx_ring.desc = linux.dma_alloc_coherent(size, owner=DRV_NAME)
    if rx_ring.desc is None:
        return -linux.ENOMEM
    rx_ring.buffer_region = linux.dma_alloc_coherent(
        rx_ring.count * adapter.rx_buffer_len, owner=DRV_NAME
    )
    if rx_ring.buffer_region is None:
        linux.dma_free_coherent(rx_ring.desc)
        rx_ring.desc = None
        return -linux.ENOMEM
    rx_ring.next_to_use = 0
    rx_ring.next_to_clean = 0
    return 0


def e1000_free_all_tx_resources(adapter):
    e1000_free_tx_resources(adapter, adapter.tx_ring)
    for ring in _state.extra_tx_rings:
        e1000_free_tx_resources(adapter, ring)
    del _state.extra_tx_rings[:]


def e1000_free_tx_resources(adapter, tx_ring):
    if tx_ring.desc is not None:
        linux.dma_free_coherent(tx_ring.desc)
        tx_ring.desc = None
    if tx_ring.buffer_region is not None:
        linux.dma_free_coherent(tx_ring.buffer_region)
        tx_ring.buffer_region = None


def e1000_free_all_rx_resources(adapter):
    e1000_free_rx_resources(adapter, adapter.rx_ring)
    for ring in _state.extra_rx_rings:
        e1000_free_rx_resources(adapter, ring)
    del _state.extra_rx_rings[:]


def e1000_free_rx_resources(adapter, rx_ring):
    if rx_ring.desc is not None:
        linux.dma_free_coherent(rx_ring.desc)
        rx_ring.desc = None
    if rx_ring.buffer_region is not None:
        linux.dma_free_coherent(rx_ring.buffer_region)
        rx_ring.buffer_region = None


# ---------------------------------------------------------------------------
# Up / down / reset
# ---------------------------------------------------------------------------

def e1000_napi_up(netdev):
    """Create/enable the NAPI contexts (shared with the decaf nucleus).

    One context per queue; on an SMP kernel each is homed on the CPU
    its vector is affine to, so queue q's poll runs from CPU q mod N's
    softirq and the rx stack cost lands on that CPU.
    """
    if not napi_mode:
        return
    ncpus = linux.num_online_cpus()
    if _state.napi is None:
        _state.napi = linux.netif_napi_add(
            netdev, e1000_poll, weight=E1000_NAPI_WEIGHT,
            cpu=0 if ncpus > 1 else None)
    linux.napi_enable(_state.napi)
    for q in range(1, e1000_num_queues()):
        if q - 1 >= len(_state.extra_napis):
            napi = linux.netif_napi_add(
                netdev, e1000_poll, weight=E1000_NAPI_WEIGHT,
                irq=netdev.irq + q,
                cpu=(q % ncpus) if ncpus > 1 else None)
            napi.queue = q
            _state.extra_napis.append(napi)
        linux.napi_enable(_state.extra_napis[q - 1])


def e1000_napi_down():
    if _state.napi is not None:
        linux.napi_disable(_state.napi)
    for napi in _state.extra_napis:
        linux.napi_disable(napi)


def e1000_napi_del():
    e1000_napi_down()
    _state.napi = None
    del _state.extra_napis[:]


def e1000_up(adapter):
    e1000_configure(adapter)
    e1000_napi_up(_state.netdev)
    if compiled_mode:
        if napi_mode:
            _state.compiled_polls = [
                _build_compiled_poll(adapter, q)
                for q in range(e1000_num_queues())]
        else:
            _state.compiled_polls = None
        _state.compiled_intr = _build_compiled_intr(adapter)
        if _state.irq_requested:
            # Skip the e1000_intr dispatch wrapper entirely: the line
            # delivers straight into the compiled handler.
            linux.rebind_irq(_state.pdev.irq, _state.compiled_intr)
    else:
        _state.compiled_polls = None
        _state.compiled_intr = None
    E1000_WRITE_REG(adapter.hw, e1000_hw.IMS, e1000_hw.E1000_IMS_ENABLE_MASK)
    e1000_irq_enable_extra(adapter)
    linux.mod_timer(_state.watchdog_timer, 2000)
    linux.netif_start_queue(_state.netdev)
    return 0


def e1000_irq_enable_extra(adapter):
    for q in range(1, e1000_num_queues()):
        E1000_WRITE_REG(adapter.hw, e1000_hw.IMS + q * E1000_QUEUE_STRIDE,
                        e1000_hw.E1000_IMS_ENABLE_MASK)


def e1000_irq_disable_extra(adapter):
    for q in range(1, e1000_num_queues()):
        E1000_WRITE_REG(adapter.hw, e1000_hw.IMC + q * E1000_QUEUE_STRIDE,
                        0xFFFFFFFF)


def e1000_down(adapter):
    if _state.compiled_intr is not None and _state.irq_requested:
        linux.rebind_irq(_state.pdev.irq, e1000_intr)
    _state.compiled_polls = None
    _state.compiled_intr = None
    E1000_WRITE_REG(adapter.hw, e1000_hw.IMC, 0xFFFFFFFF)
    e1000_irq_disable_extra(adapter)
    e1000_napi_down()
    linux.del_timer_sync(_state.watchdog_timer)
    linux.netif_stop_queue(_state.netdev)
    linux.netif_carrier_off(_state.netdev)
    adapter.link_speed = 0
    adapter.link_duplex = 0
    e1000_reset(adapter)
    e1000_clean_all_tx_rings(adapter)
    e1000_clean_all_rx_rings(adapter)


def e1000_reset(adapter):
    E1000_WRITE_REG(adapter.hw, e1000_hw.PBA, 0x00000030)
    e1000_hw.e1000_reset_hw(adapter.hw)
    ret_val = e1000_hw.e1000_init_hw(adapter.hw)
    if ret_val:
        linux.printk("e1000: Hardware Error")
    e1000_hw.e1000_phy_get_info(adapter.hw)


def e1000_configure(adapter):
    e1000_set_multi(_state.netdev)
    e1000_configure_tx(adapter)
    e1000_setup_rctl(adapter)
    e1000_configure_rx(adapter)
    e1000_alloc_rx_buffers(adapter, adapter.rx_ring)
    e1000_configure_extra_queues(adapter)


def e1000_configure_extra_queues(adapter):
    """Program the ring registers for queues >= 1 (strided layout).

    Shared with the decaf nucleus: these rings are kernel-side state,
    so the decaf driver's user half programs only queue 0 and the
    nucleus calls this from ``k_up`` for the rest.
    """
    hw = adapter.hw
    for q in range(1, e1000_num_queues()):
        s = q * E1000_QUEUE_STRIDE
        tx_ring = _state.extra_tx_rings[q - 1]
        E1000_WRITE_REG(hw, e1000_hw.TDBAL + s,
                        tx_ring.desc.dma_addr & 0xFFFFFFFF)
        E1000_WRITE_REG(hw, e1000_hw.TDBAH + s, tx_ring.desc.dma_addr >> 32)
        E1000_WRITE_REG(hw, e1000_hw.TDLEN + s,
                        tx_ring.count * E1000_TX_DESC_SIZE)
        E1000_WRITE_REG(hw, e1000_hw.TDH + s, 0)
        E1000_WRITE_REG(hw, e1000_hw.TDT + s, 0)
        tx_ring.tdh = 0
        tx_ring.tdt = 0
        rx_ring = _state.extra_rx_rings[q - 1]
        E1000_WRITE_REG(hw, e1000_hw.RDBAL + s,
                        rx_ring.desc.dma_addr & 0xFFFFFFFF)
        E1000_WRITE_REG(hw, e1000_hw.RDBAH + s, rx_ring.desc.dma_addr >> 32)
        E1000_WRITE_REG(hw, e1000_hw.RDLEN + s,
                        rx_ring.count * E1000_RX_DESC_SIZE)
        E1000_WRITE_REG(hw, e1000_hw.RDH + s, 0)
        E1000_WRITE_REG(hw, e1000_hw.RDT + s, 0)
        rx_ring.rdh = 0
        rx_ring.rdt = 0
        if napi_mode:
            E1000_WRITE_REG(hw, e1000_hw.ITR + s,
                            1_000_000_000 // (4000 * 256))
        e1000_alloc_rx_buffers(adapter, rx_ring, queue=q)


def e1000_configure_tx(adapter):
    hw = adapter.hw
    tx_ring = adapter.tx_ring
    E1000_WRITE_REG(hw, e1000_hw.TDBAL, tx_ring.desc.dma_addr & 0xFFFFFFFF)
    E1000_WRITE_REG(hw, e1000_hw.TDBAH, tx_ring.desc.dma_addr >> 32)
    E1000_WRITE_REG(hw, e1000_hw.TDLEN, tx_ring.count * E1000_TX_DESC_SIZE)
    E1000_WRITE_REG(hw, e1000_hw.TDH, 0)
    E1000_WRITE_REG(hw, e1000_hw.TDT, 0)
    tx_ring.tdh = 0
    tx_ring.tdt = 0
    E1000_WRITE_REG(hw, e1000_hw.TIPG, 0x00602008)
    E1000_WRITE_REG(hw, e1000_hw.TCTL,
                    e1000_hw.E1000_TCTL_EN | e1000_hw.E1000_TCTL_PSP)


def e1000_setup_rctl(adapter):
    rctl = e1000_hw.E1000_RCTL_EN | e1000_hw.E1000_RCTL_BAM
    E1000_WRITE_REG(adapter.hw, e1000_hw.RCTL, rctl)


def e1000_configure_rx(adapter):
    hw = adapter.hw
    rx_ring = adapter.rx_ring
    E1000_WRITE_REG(hw, e1000_hw.RDBAL, rx_ring.desc.dma_addr & 0xFFFFFFFF)
    E1000_WRITE_REG(hw, e1000_hw.RDBAH, rx_ring.desc.dma_addr >> 32)
    E1000_WRITE_REG(hw, e1000_hw.RDLEN, rx_ring.count * E1000_RX_DESC_SIZE)
    E1000_WRITE_REG(hw, e1000_hw.RDH, 0)
    E1000_WRITE_REG(hw, e1000_hw.RDT, 0)
    rx_ring.rdh = 0
    rx_ring.rdt = 0
    if napi_mode:
        # Dynamic-conservative ITR, bulk-latency class: throttle to
        # 4000 ints/s (e1000_set_itr's bottom tier) so each softirq
        # poll drains a larger batch.  Units of 256 ns.
        E1000_WRITE_REG(hw, e1000_hw.ITR, 1_000_000_000 // (4000 * 256))


def e1000_alloc_rx_buffers(adapter, rx_ring, queue=0):
    """Point every descriptor at its slot in the buffer region."""
    buf_dma = rx_ring.buffer_region.dma_addr
    for i in range(rx_ring.count):
        offset = i * E1000_RX_DESC_SIZE
        _pystruct.pack_into("<QHHBBH", rx_ring.desc.data, offset,
                            buf_dma + i * adapter.rx_buffer_len,
                            0, 0, 0, 0, 0)
    rx_ring.next_to_use = rx_ring.count - 1
    E1000_WRITE_REG(adapter.hw, e1000_hw.RDT + queue * E1000_QUEUE_STRIDE,
                    rx_ring.count - 1)
    rx_ring.rdt = rx_ring.count - 1


def e1000_clean_all_tx_rings(adapter):
    adapter.tx_ring.next_to_use = 0
    adapter.tx_ring.next_to_clean = 0
    for ring in _state.extra_tx_rings:
        ring.next_to_use = 0
        ring.next_to_clean = 0


def e1000_clean_all_rx_rings(adapter):
    adapter.rx_ring.next_to_use = 0
    adapter.rx_ring.next_to_clean = 0
    for ring in _state.extra_rx_rings:
        ring.next_to_use = 0
        ring.next_to_clean = 0


# ---------------------------------------------------------------------------
# Transmit path (stays in the kernel)
# ---------------------------------------------------------------------------

def e1000_xmit_frame(skb, netdev):
    adapter = netdev.priv
    tx_ring = adapter.tx_ring

    linux.spin_lock_irqsave(_state.tx_lock)

    if e1000_desc_unused(tx_ring) < 2:
        linux.netif_stop_queue(netdev)
        adapter.restart_queue += 1
        linux.spin_unlock_irqrestore(_state.tx_lock)
        return linux.NETDEV_TX_BUSY

    i = tx_ring.next_to_use
    buf_off = i * E1000_RXBUFFER_2048
    length = len(skb)
    tx_ring.buffer_region.data[buf_off:buf_off + length] = skb.data

    _pystruct.pack_into(
        "<QHBBBBH", tx_ring.desc.data, i * E1000_TX_DESC_SIZE,
        tx_ring.buffer_region.dma_addr + buf_off,
        length, 0,
        E1000_TXD_CMD_EOP | E1000_TXD_CMD_IFCS | E1000_TXD_CMD_RS,
        0, 0, 0,
    )

    tx_ring.next_to_use = (i + 1) % tx_ring.count
    E1000_WRITE_REG(adapter.hw, e1000_hw.TDT, tx_ring.next_to_use)
    tx_ring.tdt = tx_ring.next_to_use

    adapter.net_stats.tx_packets += 1
    adapter.net_stats.tx_bytes += length
    netdev.stats.tx_packets += 1
    netdev.stats.tx_bytes += length

    linux.spin_unlock_irqrestore(_state.tx_lock)
    return linux.NETDEV_TX_OK


def e1000_desc_unused(ring):
    if ring.next_to_clean > ring.next_to_use:
        return ring.next_to_clean - ring.next_to_use - 1
    return ring.count + ring.next_to_clean - ring.next_to_use - 1


def e1000_clean_tx_irq(adapter, tx_ring):
    """Reclaim transmitted descriptors; wakes the queue if stopped."""
    netdev = _state.netdev
    cleaned = 0
    i = tx_ring.next_to_clean
    while i != tx_ring.next_to_use:
        status = tx_ring.desc.data[i * E1000_TX_DESC_SIZE + 12]
        if not status & E1000_TXD_STAT_DD:
            break
        tx_ring.desc.data[i * E1000_TX_DESC_SIZE + 12] = 0
        i = (i + 1) % tx_ring.count
        cleaned += 1
    tx_ring.next_to_clean = i
    if cleaned and linux.netif_queue_stopped(netdev):
        linux.netif_wake_queue(netdev)
    return cleaned


# ---------------------------------------------------------------------------
# Receive path (stays in the kernel)
# ---------------------------------------------------------------------------

def e1000_clean_rx_irq(adapter, rx_ring, budget=None, queue=0):
    """Clean received descriptors; at most ``budget`` under NAPI.

    The per-packet-interrupt path (``budget is None``) copies each frame
    into a fresh skb and delivers through ``netif_rx``, exactly as the
    original driver.  The NAPI path copies into a pooled zero-copy skb
    and delivers through ``netif_receive_skb``.
    """
    netdev = _state.netdev
    napi_path = budget is not None and napi_mode
    desc = rx_ring.desc.data
    buffers = memoryview(rx_ring.buffer_region.data)
    rx_buffer_len = adapter.rx_buffer_len
    alloc_skb = linux.napi_alloc_skb
    receive_skb = linux.netif_receive_skb
    rdt_reg = e1000_hw.RDT + queue * E1000_QUEUE_STRIDE
    cleaned = 0
    cleaned_bytes = 0
    i = rx_ring.next_to_clean
    while budget is None or cleaned < budget:
        base = i * E1000_RX_DESC_SIZE
        # Descriptor layout: addr(8) length(2) csum(2) status(1) ...
        status = desc[base + 12]
        if not status & E1000_RXD_STAT_DD:
            break
        length = desc[base + 8] | (desc[base + 9] << 8)
        buf_off = i * rx_buffer_len
        if napi_path:
            skb = alloc_skb(length)
            skb.data[0:length] = buffers[buf_off:buf_off + length]
            receive_skb(netdev, skb)
        else:
            frame = bytes(buffers[buf_off:buf_off + length])
            skb = linux.skb_from_data(frame)
            linux.netif_rx(netdev, skb)
        # Clear status, hand the descriptor back to hardware (the
        # device rewrites length/csum on the next use of this slot).
        desc[base + 12] = 0
        i = (i + 1) % rx_ring.count
        cleaned += 1
        cleaned_bytes += length
        # Return descriptors to the device in small batches.
        if cleaned % 16 == 0:
            rx_ring.rdt = (i - 1) % rx_ring.count
            E1000_WRITE_REG(adapter.hw, rdt_reg, rx_ring.rdt)
    rx_ring.next_to_clean = i
    if cleaned:
        adapter.net_stats.rx_packets += cleaned
        adapter.net_stats.rx_bytes += cleaned_bytes
        netdev.stats.rx_packets += cleaned
        netdev.stats.rx_bytes += cleaned_bytes
        rx_ring.rdt = (i - 1) % rx_ring.count
        E1000_WRITE_REG(adapter.hw, rdt_reg, rx_ring.rdt)
    return cleaned


# ---------------------------------------------------------------------------
# Interrupt handler (critical root)
# ---------------------------------------------------------------------------

def _build_compiled_intr(adapter):
    """Compile the queue-0 interrupt handler (the loop compiler).

    Under NAPI the handler only acks ICR, masks, and schedules the
    poll, so the compiled form is a thin accessor chain.  In the
    per-packet-interrupt ablation (``napi=False``) the handler IS the
    datapath: on a single-CPU kernel the whole
    ``e1000_intr`` -> ``e1000_clean_rx_irq(budget=None)`` chain is
    inlined -- ICR read, per-packet ``netif_rx`` stack charge (a
    consume sequence point at the exact interpreted cost), descriptor
    decode, and the RDT hand-backs -- with the batched bookkeeping
    held in plain locals.  Observably identical to the interpreted
    path: same register access order and taps, same clock advances,
    same counters.
    """
    from ...kernel.fastpath import FastIo, _FAR, _heappop
    from ...kernel.netdev import SkBuff

    kernel = linux.kernel
    net = kernel.net
    netdev = _state.netdev
    hw = adapter.hw
    tx_ring = adapter.tx_ring
    rx_ring = adapter.rx_ring
    hw_addr = hw.hw_addr
    fio = FastIo(kernel, is_mmio=True)
    read_icr = fio.reader(hw_addr + e1000_hw.ICR, 4)
    write_imc = fio.writer(hw_addr + e1000_hw.IMC, 4)
    flush_io = fio.flush
    napi_schedule = linux.napi_schedule
    mod_timer = linux.mod_timer
    watchdog = _state.watchdog_timer
    IRQ_NONE = linux.IRQ_NONE
    IRQ_HANDLED = linux.IRQ_HANDLED
    LSC = e1000_hw.E1000_ICR_LSC
    RX_CAUSES = e1000_hw.E1000_ICR_RXT0 | e1000_hw.E1000_ICR_RXDMT0
    TXDW = e1000_hw.E1000_ICR_TXDW
    WORK_CAUSES = RX_CAUSES | TXDW

    if napi_mode:
        def intr(irq, dev_id):
            icr = read_icr()
            if not icr:
                flush_io()
                return IRQ_NONE
            if icr & LSC:
                hw.get_link_status = 1
                mod_timer(watchdog, 1)
            napi = _state.napi
            if napi is not None and icr & WORK_CAUSES:
                write_imc(0xFFFFFFFF)
                napi_schedule(napi)
                flush_io()
                return IRQ_HANDLED
            if icr & RX_CAUSES:
                e1000_clean_rx_irq(adapter, rx_ring)
            if icr & TXDW:
                e1000_clean_tx_irq(adapter, tx_ring)
            flush_io()
            return IRQ_HANDLED

        return intr

    if kernel.nr_cpus > 1:
        # SMP per-packet-interrupt mode: keep the interpreted clean
        # loops (their consumes must route through the CPU-targeted
        # deferral branch); only the ICR access chain is pre-bound.
        def intr(irq, dev_id):
            icr = read_icr()
            if not icr:
                flush_io()
                return IRQ_NONE
            if icr & LSC:
                hw.get_link_status = 1
                mod_timer(watchdog, 1)
            if icr & RX_CAUSES:
                e1000_clean_rx_irq(adapter, rx_ring)
            if icr & TXDW:
                e1000_clean_tx_irq(adapter, tx_ring)
            flush_io()
            return IRQ_HANDLED

        return intr

    # Single-CPU per-packet-interrupt mode: the fully inlined variant.
    io = kernel.io
    clock = kernel.clock
    events = kernel.events
    heap = events._heap
    wheel = events._wheel
    wheel_peek = wheel.peek_event
    memo = events.next_due_memo
    consume = kernel.consume
    wedged = io._wedged
    agg = kernel.cpu
    acct = kernel.current_cpu.acct
    charge_cpu = agg.charge
    charge_acct = acct.charge
    # Accounting internals, pre-bound for the once-per-interrupt flush
    # (both dicts are created once and never replaced).
    agg_cat = agg._by_category
    acct_cat = acct._by_category
    costs = kernel.costs
    c_mmio = costs.mmio_ns
    stack_fixed = costs.rx_packet_cpu_ns
    stack_per_byte = costs.byte_copy_ns + costs.rx_user_copy_byte_ns
    icr_addr = hw_addr + e1000_hw.ICR
    rdt_addr = hw_addr + e1000_hw.RDT
    region = io._find(icr_addr, 4, True)
    handler = region.handler
    rname = region.name
    icr_off = icr_addr - region.base
    rdt_off = rdt_addr - region.base
    mk_r = getattr(handler, "reg_reader", None)
    dev_read_icr = mk_r(icr_off, 4) if mk_r is not None else None
    if dev_read_icr is None:
        dev_read_icr = lambda: handler.read(icr_off, 4)  # noqa: E731
    mk_w = getattr(handler, "reg_writer", None)
    dev_write_rdt = mk_w(rdt_off, 4) if mk_w is not None else None
    if dev_write_rdt is None:
        dev_write_rdt = \
            lambda v: handler.write(rdt_off, v, 4)  # noqa: E731
    rx_desc = rx_ring.desc.data
    rx_count = rx_ring.count
    buffers = memoryview(rx_ring.buffer_region.data)
    rx_buffer_len = adapter.rx_buffer_len
    net_stats = adapter.net_stats
    dev_stats = netdev.stats
    M32 = 0xFFFFFFFF
    # CStruct writes bypass the __setattr__ descriptor on the hot
    # fields: a raw instance-dict store plus the dirty-mark is the
    # exact effect of the descriptor, minus the dispatch.  Both the
    # dict and the dirty set are per-instance and mutated in place.
    rx_ring_d = rx_ring.__dict__
    rx_ring_dirty = rx_ring._dirty_fields.add
    net_stats_d = net_stats.__dict__
    net_stats_dirty = net_stats._dirty_fields.add

    def intr(irq, dev_id):
        pend_io_ns = 0
        pend_io_n = 0
        pend_stack_ns = 0
        # -- ICR read: inlined compiled accessor --
        pend_io_n += 1
        target = clock._now_ns + c_mmio
        if target < memo[0]:
            clock._now_ns = target
            pend_io_ns += c_mmio
        else:
            nxt = _FAR
            while heap:
                head = heap[0]
                if head.cancelled:
                    _heappop(heap)
                    continue
                nxt = head.time_ns
                break
            if wheel._live:
                front = wheel._front
                if front is None or front.wheel is not wheel:
                    front = wheel_peek()
                if front is not None and front.time_ns < nxt:
                    nxt = front.time_ns
            if nxt <= target:
                io.mmio_accesses += pend_io_n
                pend_io_n = 0
                consume(c_mmio, True, "io")
            else:
                memo[0] = nxt
                clock._now_ns = target
                pend_io_ns += c_mmio
        if wedged and icr_addr in wedged:
            icr = wedged[icr_addr] & M32
        else:
            icr = dev_read_icr() & M32
            tap = io.trace_tap
            if tap is not None:
                tap("r", rname, icr_off, 4, icr)
        if not icr:
            if pend_io_n:
                io.mmio_accesses += pend_io_n
            if pend_io_ns:
                charge_cpu(pend_io_ns, "io")
                charge_acct(pend_io_ns, "io")
            return IRQ_NONE
        if icr & LSC:
            hw.get_link_status = 1
            mod_timer(watchdog, 1)
        if icr & RX_CAUSES:
            # -- inlined e1000_clean_rx_irq(budget=None): netif_rx path --
            sink = net.rx_sink
            cleaned = 0
            cleaned_bytes = 0
            i = rx_ring.next_to_clean
            while True:
                base = i * E1000_RX_DESC_SIZE
                if not rx_desc[base + 12] & E1000_RXD_STAT_DD:
                    break
                length = rx_desc[base + 8] | rx_desc[base + 9] << 8
                buf_off = i * rx_buffer_len
                frame = bytes(buffers[buf_off:buf_off + length])
                skb = SkBuff(frame)
                # Inlined netif_rx: the per-packet stack consume is a
                # sequence point at the exact interpreted cost.
                cost = int(stack_fixed + length * stack_per_byte)
                target = clock._now_ns + cost
                if target < memo[0]:
                    clock._now_ns = target
                    pend_stack_ns += cost
                else:
                    nxt = _FAR
                    while heap:
                        head = heap[0]
                        if head.cancelled:
                            _heappop(heap)
                            continue
                        nxt = head.time_ns
                        break
                    if wheel._live:
                        front = wheel._front
                        if front is None or front.wheel is not wheel:
                            front = wheel_peek()
                        if front is not None and front.time_ns < nxt:
                            nxt = front.time_ns
                    if nxt <= target:
                        if pend_io_n:
                            io.mmio_accesses += pend_io_n
                            pend_io_n = 0
                        if pend_io_ns:
                            charge_cpu(pend_io_ns, "io")
                            charge_acct(pend_io_ns, "io")
                            pend_io_ns = 0
                        if pend_stack_ns:
                            charge_cpu(pend_stack_ns, "netstack")
                            charge_acct(pend_stack_ns, "netstack")
                            pend_stack_ns = 0
                        consume(cost, True, "netstack")
                    else:
                        memo[0] = nxt
                        clock._now_ns = target
                        pend_stack_ns += cost
                skb.dev = netdev
                if sink is not None:
                    sink(netdev, skb)
                rx_desc[base + 12] = 0
                i += 1
                if i == rx_count:
                    i = 0
                cleaned += 1
                cleaned_bytes += length
                if not cleaned & 15:  # cleaned % 16 == 0
                    rdt = i - 1 if i else rx_count - 1
                    rx_ring_d["rdt"] = rdt
                    rx_ring_dirty("rdt")
                    # -- RDT write: inlined compiled accessor --
                    pend_io_n += 1
                    target = clock._now_ns + c_mmio
                    if target < memo[0]:
                        clock._now_ns = target
                        pend_io_ns += c_mmio
                    else:
                        nxt = _FAR
                        while heap:
                            head = heap[0]
                            if head.cancelled:
                                _heappop(heap)
                                continue
                            nxt = head.time_ns
                            break
                        if wheel._live:
                            front = wheel._front
                            if front is None or front.wheel is not wheel:
                                front = wheel_peek()
                            if front is not None and front.time_ns < nxt:
                                nxt = front.time_ns
                        if nxt <= target:
                            io.mmio_accesses += pend_io_n
                            pend_io_n = 0
                            if pend_io_ns:
                                charge_cpu(pend_io_ns, "io")
                                charge_acct(pend_io_ns, "io")
                                pend_io_ns = 0
                            if pend_stack_ns:
                                charge_cpu(pend_stack_ns, "netstack")
                                charge_acct(pend_stack_ns, "netstack")
                                pend_stack_ns = 0
                            consume(c_mmio, True, "io")
                        else:
                            memo[0] = nxt
                            clock._now_ns = target
                            pend_io_ns += c_mmio
                    if not (wedged and rdt_addr in wedged):
                        tap = io.trace_tap
                        if tap is not None:
                            tap("w", rname, rdt_off, 4, rdt)
                        dev_write_rdt(rdt)
            rx_ring_d["next_to_clean"] = i
            rx_ring_dirty("next_to_clean")
            if cleaned:
                net.stack_rx_packets += cleaned
                net.stack_rx_bytes += cleaned_bytes
                net_stats_d["rx_packets"] += cleaned
                net_stats_d["rx_bytes"] += cleaned_bytes
                net_stats_dirty("rx_packets")
                net_stats_dirty("rx_bytes")
                dev_stats.rx_packets += cleaned
                dev_stats.rx_bytes += cleaned_bytes
                rdt = i - 1 if i else rx_count - 1
                rx_ring_d["rdt"] = rdt
                rx_ring_dirty("rdt")
                # -- final RDT write: inlined compiled accessor --
                pend_io_n += 1
                target = clock._now_ns + c_mmio
                if target < memo[0]:
                    clock._now_ns = target
                    pend_io_ns += c_mmio
                else:
                    nxt = _FAR
                    while heap:
                        head = heap[0]
                        if head.cancelled:
                            _heappop(heap)
                            continue
                        nxt = head.time_ns
                        break
                    if wheel._live:
                        front = wheel._front
                        if front is None or front.wheel is not wheel:
                            front = wheel_peek()
                        if front is not None and front.time_ns < nxt:
                            nxt = front.time_ns
                    if nxt <= target:
                        io.mmio_accesses += pend_io_n
                        pend_io_n = 0
                        if pend_io_ns:
                            charge_cpu(pend_io_ns, "io")
                            charge_acct(pend_io_ns, "io")
                            pend_io_ns = 0
                        if pend_stack_ns:
                            charge_cpu(pend_stack_ns, "netstack")
                            charge_acct(pend_stack_ns, "netstack")
                            pend_stack_ns = 0
                        consume(c_mmio, True, "io")
                    else:
                        memo[0] = nxt
                        clock._now_ns = target
                        pend_io_ns += c_mmio
                if not (wedged and rdt_addr in wedged):
                    tap = io.trace_tap
                    if tap is not None:
                        tap("w", rname, rdt_off, 4, rdt)
                    dev_write_rdt(rdt)
        if icr & TXDW:
            e1000_clean_tx_irq(adapter, tx_ring)
        if pend_io_n:
            io.mmio_accesses += pend_io_n
        # Inlined charge pair: this flush runs once per interrupt, so
        # the call overhead is worth trading for the raw counter ops.
        if pend_io_ns:
            agg._busy_ns += pend_io_ns
            agg_cat["io"] = agg_cat.get("io", 0) + pend_io_ns
            acct._busy_ns += pend_io_ns
            acct_cat["io"] = acct_cat.get("io", 0) + pend_io_ns
        if pend_stack_ns:
            agg._busy_ns += pend_stack_ns
            agg_cat["netstack"] = agg_cat.get("netstack", 0) + pend_stack_ns
            acct._busy_ns += pend_stack_ns
            acct_cat["netstack"] = acct_cat.get("netstack", 0) + pend_stack_ns
        return IRQ_HANDLED

    return intr


def e1000_intr(irq, dev_id):
    fast = _state.compiled_intr
    if fast is not None:
        return fast(irq, dev_id)
    netdev = dev_id
    adapter = netdev.priv
    hw = adapter.hw
    icr = E1000_READ_REG(hw, e1000_hw.ICR)
    if not icr:
        return linux.IRQ_NONE

    if icr & e1000_hw.E1000_ICR_LSC:
        hw.get_link_status = 1
        linux.mod_timer(_state.watchdog_timer, 1)

    work_causes = (e1000_hw.E1000_ICR_RXT0 | e1000_hw.E1000_ICR_RXDMT0
                   | e1000_hw.E1000_ICR_TXDW)
    if napi_mode and _state.napi is not None and icr & work_causes:
        # NAPI: mask device interrupts and punt all ring work to the
        # softirq poll; e1000_poll re-enables on napi_complete.
        E1000_WRITE_REG(hw, e1000_hw.IMC, 0xFFFFFFFF)
        linux.napi_schedule(_state.napi)
        return linux.IRQ_HANDLED

    if icr & (e1000_hw.E1000_ICR_RXT0 | e1000_hw.E1000_ICR_RXDMT0):
        e1000_clean_rx_irq(adapter, adapter.rx_ring)
    if icr & e1000_hw.E1000_ICR_TXDW:
        e1000_clean_tx_irq(adapter, adapter.tx_ring)
    return linux.IRQ_HANDLED


def e1000_intr_queue(q):
    """Per-queue vector (irq + q): reads queue q's ICR, runs its NAPI."""
    adapter = _state.adapter
    hw = adapter.hw
    s = q * E1000_QUEUE_STRIDE
    icr = E1000_READ_REG(hw, e1000_hw.ICR + s)
    if not icr:
        return linux.IRQ_NONE
    if napi_mode and q - 1 < len(_state.extra_napis):
        E1000_WRITE_REG(hw, e1000_hw.IMC + s, 0xFFFFFFFF)
        linux.napi_schedule(_state.extra_napis[q - 1])
        return linux.IRQ_HANDLED
    if icr & (e1000_hw.E1000_ICR_RXT0 | e1000_hw.E1000_ICR_RXDMT0):
        e1000_clean_rx_irq(adapter, _state.extra_rx_rings[q - 1], queue=q)
    if icr & e1000_hw.E1000_ICR_TXDW:
        e1000_clean_tx_irq(adapter, _state.extra_tx_rings[q - 1])
    return linux.IRQ_HANDLED


def _build_compiled_poll(adapter, q):
    """Compile queue q's NAPI poll (the loop compiler; see fastpath.py).

    Everything ``e1000_poll`` + ``e1000_clean_tx_irq`` +
    ``e1000_clean_rx_irq`` resolve per packet is resolved here, once,
    when ``e1000_up`` has programmed the rings: the queue's RDT / IMS
    accessor chains (MMIO region lookup, device handler, cost charge),
    the descriptor arrays and ring geometry, the pooled-skb free list,
    and the stats objects.  Counter bumps accumulate in locals and are
    written back once per drain; the device-visible access sequence --
    an RDT hand-back every 16 descriptors, the final RDT, the IMS
    restore on completion -- is byte-identical to the interpreted
    loops, descriptor writes included.
    """
    from ...kernel.fastpath import FastIo
    from ...kernel.netdev import SkBuff

    kernel = linux.kernel
    net = kernel.net
    netdev = _state.netdev
    if q == 0:
        tx_ring = adapter.tx_ring
        rx_ring = adapter.rx_ring
    else:
        tx_ring = _state.extra_tx_rings[q - 1]
        rx_ring = _state.extra_rx_rings[q - 1]
    s = q * E1000_QUEUE_STRIDE
    hw_addr = adapter.hw.hw_addr
    fio = FastIo(kernel, is_mmio=True)
    write_rdt = fio.writer(hw_addr + e1000_hw.RDT + s, 4)
    write_ims = fio.writer(hw_addr + e1000_hw.IMS + s, 4)
    flush_io = fio.flush
    tx_desc = tx_ring.desc.data
    rx_desc = rx_ring.desc.data
    tx_count = tx_ring.count
    rx_count = rx_ring.count
    buffers = memoryview(rx_ring.buffer_region.data)
    rx_buffer_len = adapter.rx_buffer_len
    net_stats = adapter.net_stats
    dev_stats = netdev.stats
    napi_complete = linux.napi_complete
    ims_enable = e1000_hw.E1000_IMS_ENABLE_MASK
    smp = kernel.nr_cpus > 1
    shared_pool = None if smp else net.get_skb_pool()

    def poll(napi, budget):
        # -- tx reclaim (e1000_clean_tx_irq; descriptor memory only) --
        i = tx_ring.next_to_clean
        end = tx_ring.next_to_use
        cleaned_tx = 0
        while i != end:
            base = i * E1000_TX_DESC_SIZE + 12
            if not tx_desc[base] & E1000_TXD_STAT_DD:
                break
            tx_desc[base] = 0
            i += 1
            if i == tx_count:
                i = 0
            cleaned_tx += 1
        tx_ring.next_to_clean = i
        if cleaned_tx and netdev.netif_queue_stopped():
            netdev.netif_wake_queue()
        # -- rx clean (e1000_clean_rx_irq, NAPI path) --
        pool = (net.get_skb_pool(kernel.current_cpu.index) if smp
                else shared_pool)
        free = pool._free
        skbs = pool._skbs
        arena = pool._arena
        buf_size = pool.buf_size
        pool_alloc = pool.alloc
        sink = net.rx_sink
        cleaned = 0
        cleaned_bytes = 0
        hits = 0
        recycles = 0
        i = rx_ring.next_to_clean
        while cleaned < budget:
            base = i * E1000_RX_DESC_SIZE
            status = rx_desc[base + 12]
            if not status & E1000_RXD_STAT_DD:
                break
            length = rx_desc[base + 8] | rx_desc[base + 9] << 8
            buf_off = i * rx_buffer_len
            # Inlined SkbPool.alloc hit path; the pool handles the rest.
            if free and length <= buf_size:
                slot = free.popleft()
                hits += 1
                skb = skbs[slot]
                if skb is None or len(skb.data) != length:
                    sbase = slot * buf_size
                    skb = SkBuff(arena[sbase:sbase + length], 0x0800)
                    skbs[slot] = skb
                else:
                    skb.protocol = 0x0800
                skb._pool = pool
                skb._slot = slot
            else:
                skb = pool_alloc(length)
            skb.data[0:length] = buffers[buf_off:buf_off + length]
            # Inlined netif_receive_skb; stack charge still lands via
            # flush_rx_batch after the poll returns.
            skb.dev = netdev
            if sink is not None:
                sink(netdev, skb)
            pool_of_skb = skb._pool
            if pool_of_skb is not None:
                skb._pool = None
                skb.dev = None  # no stale device ref in the slot cache
                if pool_of_skb is pool:
                    recycles += 1
                    free.append(skb._slot)
                else:
                    pool_of_skb.recycles += 1
                    pool_of_skb._free.append(skb._slot)
                skb._slot = -1
            rx_desc[base + 12] = 0
            i += 1
            if i == rx_count:
                i = 0
            cleaned += 1
            cleaned_bytes += length
            if not cleaned & 15:  # cleaned % 16 == 0
                rdt = i - 1 if i else rx_count - 1
                rx_ring.rdt = rdt
                write_rdt(rdt)
        rx_ring.next_to_clean = i
        if cleaned:
            net_stats.rx_packets += cleaned
            net_stats.rx_bytes += cleaned_bytes
            dev_stats.rx_packets += cleaned
            dev_stats.rx_bytes += cleaned_bytes
            net._rx_batch_packets += cleaned
            net._rx_batch_bytes += cleaned_bytes
            pool.hits += hits
            pool.recycles += recycles
            rdt = i - 1 if i else rx_count - 1
            rx_ring.rdt = rdt
            write_rdt(rdt)
        flush_io()
        if cleaned < budget:
            napi_complete(napi)
            write_ims(ims_enable)
            flush_io()
        return cleaned

    return poll


def e1000_poll(napi, budget):
    """NAPI poll: drain both rings, re-enable interrupts when caught up."""
    fast = _state.compiled_polls
    if fast is not None:
        return fast[napi.queue](napi, budget)
    adapter = _state.adapter
    q = napi.queue
    if q == 0:
        tx_ring = adapter.tx_ring
        rx_ring = adapter.rx_ring
    else:
        tx_ring = _state.extra_tx_rings[q - 1]
        rx_ring = _state.extra_rx_rings[q - 1]
    e1000_clean_tx_irq(adapter, tx_ring)
    work_done = e1000_clean_rx_irq(adapter, rx_ring, budget, queue=q)
    if work_done < budget:
        linux.napi_complete(napi)
        # Re-enabling IMS re-fires immediately if causes latched in ICR
        # while we polled, so nothing is stranded in the ring.
        E1000_WRITE_REG(adapter.hw, e1000_hw.IMS + q * E1000_QUEUE_STRIDE,
                        e1000_hw.E1000_IMS_ENABLE_MASK)
    return work_done


# ---------------------------------------------------------------------------
# Watchdog (timer context in the legacy driver)
# ---------------------------------------------------------------------------

def e1000_watchdog(data):
    adapter = data
    netdev = _state.netdev
    hw = adapter.hw

    e1000_hw.e1000_check_for_link(hw)

    link = E1000_READ_REG(hw, e1000_hw.STATUS) & e1000_hw.E1000_STATUS_LU
    if link:
        if not linux.netif_carrier_ok(netdev):
            ret_val, speed, duplex = e1000_hw.e1000_get_speed_and_duplex(hw)
            adapter.link_speed = speed
            adapter.link_duplex = duplex
            linux.printk("e1000: %s NIC Link is Up %d Mbps %s"
                         % (netdev.name, speed,
                            "Full Duplex" if duplex else "Half Duplex"))
            linux.netif_carrier_on(netdev)
            linux.netif_wake_queue(netdev)
    else:
        if linux.netif_carrier_ok(netdev):
            adapter.link_speed = 0
            adapter.link_duplex = 0
            linux.printk("e1000: %s NIC Link is Down" % netdev.name)
            linux.netif_carrier_off(netdev)
            linux.netif_stop_queue(netdev)
        # SmartSpeed: retry-link workaround while the link is down.
        e1000_hw.e1000_smartspeed(hw)

    e1000_update_stats(adapter)
    e1000_hw.e1000_update_adaptive(hw)

    linux.mod_timer(_state.watchdog_timer, 2000)


def e1000_update_stats(adapter):
    hw = adapter.hw
    # Reading the statistics block clears it on hardware.
    for i in range(8):
        E1000_READ_REG(hw, e1000_hw.CRCERRS + (i << 2))
    adapter.net_stats.collisions = 0


# ---------------------------------------------------------------------------
# Management path (moves to user level)
# ---------------------------------------------------------------------------

def e1000_get_stats(netdev):
    return netdev.stats


def e1000_set_multi(netdev):
    adapter = netdev.priv
    hw = adapter.hw
    e1000_hw.e1000_rar_set(hw, list(netdev.dev_addr), 0)
    rctl = E1000_READ_REG(hw, e1000_hw.RCTL)
    rctl |= e1000_hw.E1000_RCTL_BAM
    E1000_WRITE_REG(hw, e1000_hw.RCTL, rctl)
    return 0


def e1000_set_mac(netdev, addr):
    adapter = netdev.priv
    for i in range(6):
        adapter.hw.mac_addr[i] = addr[i]
    netdev.dev_addr = bytes(addr)
    e1000_hw.e1000_rar_set(adapter.hw, list(addr), 0)
    return 0


def e1000_change_mtu(netdev, new_mtu):
    adapter = netdev.priv
    if new_mtu < 68 or new_mtu > 16110:
        return -linux.EINVAL
    netdev.mtu = new_mtu
    adapter.hw.max_frame_size = new_mtu + 18
    if linux.netif_running(netdev):
        e1000_reinit_locked(adapter)
    return 0


def e1000_tx_timeout(netdev):
    adapter = netdev.priv
    adapter.tx_timeout_count += 1
    e1000_reinit_locked(adapter)


def e1000_reinit_locked(adapter):
    e1000_down(adapter)
    e1000_up(adapter)


# ---------------------------------------------------------------------------
# Power management (prime movable code, per the paper)
# ---------------------------------------------------------------------------

def e1000_suspend(pdev):
    adapter = _state.adapter
    netdev = _state.netdev
    if adapter is None:
        return -linux.ENODEV
    if linux.netif_running(netdev):
        e1000_down(adapter)
    e1000_save_config_space(adapter, pdev)
    # Return value historically unchecked on the suspend path.
    e1000_hw.e1000_power_down_phy_hw(adapter.hw)
    linux.pci_disable_device(pdev)
    return 0


def e1000_resume(pdev):
    adapter = _state.adapter
    netdev = _state.netdev
    if adapter is None:
        return -linux.ENODEV
    err = linux.pci_enable_device(pdev)
    if err:
        return err
    linux.pci_set_master(pdev)
    e1000_restore_config_space(adapter, pdev)
    err = e1000_hw.e1000_power_up_phy_hw(adapter.hw)
    if err:
        return -linux.EIO
    e1000_reset(adapter)
    if linux.netif_running(netdev):
        e1000_up(adapter)
    return 0


# ---------------------------------------------------------------------------
# Module glue
# ---------------------------------------------------------------------------

def e1000_init_module():
    return 0


def e1000_exit_module():
    return 0


class E1000PciGlue:
    name = DRV_NAME

    def probe(self, kernel, pdev):
        return e1000_probe(pdev)

    def remove(self, kernel, pdev):
        e1000_remove(pdev)

    def matches(self, func):
        from ...devices.e1000 import E1000_DEVICE_IDS

        return (func.vendor_id == E1000_VENDOR_ID
                and func.device_id in E1000_DEVICE_IDS)


def make_module(napi=True, num_queues=1, compiled=True):
    from ..modulebase import LegacyDriverModule
    from . import e1000_ethtool, e1000_param

    def init_fn():
        # Runs after the module loader resets _state, before probe.
        set_napi_mode(napi)
        set_num_queues(num_queues)
        set_compiled_mode(compiled)
        return e1000_init_module()

    # e1000 spans several source files sharing one `linux` binding.
    return LegacyDriverModule(
        name=DRV_NAME,
        driver_module=__import__(__name__, fromlist=["*"]),
        extra_modules=(e1000_hw, e1000_param, e1000_ethtool),
        pci_glue=E1000PciGlue(),
        init_fn=init_fn,
        cleanup_fn=e1000_exit_module,
    )
