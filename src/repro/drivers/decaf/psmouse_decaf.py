"""psmouse decaf driver: detection and initialization in managed style.

The probe/extension/initialize flow of the legacy driver, rewritten
with exceptions: a failed command raises :class:`ProtocolException`
instead of returning ``-ENODEV`` through four levels of callers.  Each
PS/2 command goes through the kernel command engine (a downcall), so
mouse bring-up is the chatty, crossing-heavy initialization the paper
measures (24 crossings, 0.40 s for psmouse).
"""

from ..legacy.psmouse import (
    PSMOUSE_CMD_DISABLE,
    PSMOUSE_CMD_ENABLE,
    PSMOUSE_CMD_GETID,
    PSMOUSE_CMD_GETINFO,
    PSMOUSE_CMD_RESET_BAT,
    PSMOUSE_CMD_SETRATE,
    PSMOUSE_CMD_SETRES,
    PSMOUSE_CMD_SETSCALE11,
    PSMOUSE_RET_BAT,
    PSMOUSE_RET_ID,
    PSMOUSE_STATE_ACTIVATED,
    PSMOUSE_STATE_CMD,
    psmouse_struct,
)
from .exceptions import DriverException, ProtocolException


class PsmouseDecafDriver:
    def __init__(self, rt, nucleus):
        self.rt = rt
        self.nucleus = nucleus
        self.resyncs = 0

    # -- command plumbing ---------------------------------------------------------

    def command(self, command, params_out=0, params_in=()):
        """One PS/2 command via the kernel engine; raises on failure."""
        err, responses = self.nucleus.plumbing.channel.downcall(
            self.nucleus.k_ps2_command,
            extra=(command, params_out, list(params_in)),
        )
        if err:
            raise ProtocolException(
                "PS/2 command %#04x failed" % command, errno=err
            )
        return responses

    def try_command(self, command, params_out=0, params_in=()):
        """Command variant for probes that are allowed to fail."""
        try:
            return self.command(command, params_out, params_in)
        except ProtocolException:
            return None

    # -- probing (converted from the legacy detection chain) --------------------------

    def probe(self, psmouse):
        resp = self.command(PSMOUSE_CMD_GETID, params_out=1)
        if resp[0] not in (0x00, 0x03, 0x04):
            raise ProtocolException("no PS/2 mouse present")

    def reset(self, psmouse):
        resp = self.command(PSMOUSE_CMD_RESET_BAT, params_out=2)
        if len(resp) < 2 or resp[0] != PSMOUSE_RET_BAT or resp[1] != PSMOUSE_RET_ID:
            raise ProtocolException("self-test failed: %r" % (resp,))

    def synaptics_detect(self, psmouse):
        """Touchpad probe; plain mice fail the signature check."""
        self.command(PSMOUSE_CMD_SETSCALE11)
        for i in range(6, -2, -2):
            self.command(PSMOUSE_CMD_SETRES, params_in=((0 >> i) & 3,))
        resp = self.command(PSMOUSE_CMD_GETINFO, params_out=3)
        if len(resp) >= 2 and resp[1] == 0x47:
            return True
        return False

    def intellimouse_detect(self, psmouse):
        for rate in (200, 100, 80):
            self.command(PSMOUSE_CMD_SETRATE, params_in=(rate,))
        resp = self.command(PSMOUSE_CMD_GETID, params_out=1)
        if resp[0] == 3:
            psmouse.model = 3
            return True
        return False

    def im_explorer_detect(self, psmouse):
        for rate in (200, 200, 80):
            self.command(PSMOUSE_CMD_SETRATE, params_in=(rate,))
        resp = self.command(PSMOUSE_CMD_GETID, params_out=1)
        if resp[0] == 4:
            psmouse.model = 4
            return True
        return False

    def extensions(self, psmouse):
        """Protocol ladder, fanciest first (converted with a clean
        boolean chain instead of errno plumbing)."""
        try:
            if self.synaptics_detect(psmouse):
                psmouse.name = "Synaptics TouchPad"
                psmouse.pktsize = 6
                return
        except ProtocolException:
            pass

        if self.intellimouse_detect(psmouse):
            if self.im_explorer_detect(psmouse):
                psmouse.name = "IntelliMouse Explorer"
                psmouse.pktsize = 4
                return
            psmouse.name = "IntelliMouse"
            psmouse.pktsize = 4
            return

        psmouse.name = "PS/2 Mouse"
        psmouse.pktsize = 3

    # -- initialization ----------------------------------------------------------------

    def set_rate(self, psmouse, rate):
        self.command(PSMOUSE_CMD_SETRATE, params_in=(rate,))
        psmouse.rate = rate

    def set_resolution(self, psmouse, resolution):
        table = {25: 0, 50: 1, 100: 2, 200: 3}
        self.command(PSMOUSE_CMD_SETRES,
                     params_in=(table.get(resolution, 3),))
        psmouse.resolution = resolution

    def initialize(self, psmouse):
        self.set_resolution(psmouse, 200)
        self.set_rate(psmouse, 100)
        self.command(PSMOUSE_CMD_SETSCALE11)

    def activate(self, psmouse):
        self.command(PSMOUSE_CMD_ENABLE)
        self._down(self.nucleus.k_set_state, psmouse,
                   extra=(PSMOUSE_STATE_ACTIVATED,))

    def deactivate(self, psmouse):
        self.try_command(PSMOUSE_CMD_DISABLE)
        self._down(self.nucleus.k_set_state, psmouse,
                   extra=(PSMOUSE_STATE_CMD,))

    def _down(self, func, psmouse=None, extra=None):
        args = [(psmouse, psmouse_struct)] if psmouse is not None else []
        return self.nucleus.plumbing.downcall_checked(
            func, args=args, extra=extra
        )

    # -- connect / disconnect -------------------------------------------------------------

    def connect(self, psmouse):
        self.probe(psmouse)
        self.reset(psmouse)
        self.extensions(psmouse)
        self.initialize(psmouse)
        self._down(self.nucleus.k_register_input_device, psmouse)
        try:
            self.activate(psmouse)
        except DriverException:
            self._down(self.nucleus.k_unregister_input_device)
            raise
        return 0

    def disconnect(self, psmouse):
        self.deactivate(psmouse)
        self._down(self.nucleus.k_unregister_input_device)
        return 0

    # -- periodic resync check (timer -> work item -> here) -----------------------

    def resync_check(self, psmouse):
        """Periodic health check of the activated mouse.

        Pure bookkeeping -- issuing PS/2 commands here would interleave
        with the motion stream -- but as an upcall that runs mid-
        workload it is the fault-injection point for this driver.
        """
        if psmouse.state != PSMOUSE_STATE_ACTIVATED:
            return 0
        self.resyncs += 1
        return 0
