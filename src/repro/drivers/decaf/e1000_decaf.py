"""E1000 decaf driver: the user-level half in managed style.

The 236-functions-to-Java conversion of the paper's case study, scaled
to our driver: probe/open/close/watchdog and the management interface
run here, written with classes and checked exceptions.  ``open`` is
literally Figure 4: nested try blocks whose handlers release exactly
the resources acquired so far, re-throwing upward.
"""

from ..legacy.e1000_main import e1000_adapter
from . import e1000_param_decaf as param
from .e1000_hw_decaf import E1000Hw
from .exceptions import (
    ConfigException,
    DriverException,
    E1000HWException,
    EepromException,
    HardwareException,
    ResourceException,
)


class E1000DecafDriver:
    def __init__(self, rt, nucleus, library):
        self.rt = rt
        self.nucleus = nucleus
        self.library = library
        self.hw = None  # E1000Hw bound to the adapter twin at probe
        self.watchdog_runs = 0

    def _down(self, func, adapter=None, extra=None, exc=DriverException):
        args = [(adapter, e1000_adapter)] if adapter is not None else []
        return self.nucleus.plumbing.downcall_checked(
            func, args=args, extra=extra, exc_type=exc
        )

    def _lib(self, func, adapter):
        """Call into the driver library across the language boundary."""
        channel = self.nucleus.plumbing.channel
        ret = channel.direct_call(func, adapter)
        if isinstance(ret, int) and ret < 0:
            raise HardwareException("driver library call failed", errno=ret)
        return ret

    # -- probe: converted from e1000_probe -----------------------------------------

    def init_one(self, adapter, options=None):
        self._down(self.nucleus.k_pci_setup, adapter,
                   exc=ResourceException)
        try:
            self.hw = E1000Hw(adapter.hw, self.rt)
            adapter.msg_enable = 7
            adapter.rx_buffer_len = 2048
            adapter.hw.fc = 0xFF
            adapter.hw.autoneg = 1
            adapter.hw.wait_autoneg_complete = 0

            param.check_options(adapter, options)

            self.hw.set_mac_type()
            self.hw.set_media_type()
            self.hw.get_bus_info()

            self.hw.reset_hw()
            self.hw.validate_eeprom_checksum()
            self.hw.read_mac_addr()

            self.save_config_space(adapter)
            self._down(self.nucleus.k_register_netdev, adapter,
                       exc=ResourceException)
            try:
                self.reset(adapter)
            except DriverException:
                self._down(self.nucleus.k_unregister_netdev)
                raise
        except DriverException:
            self._down(self.nucleus.k_pci_teardown)
            raise
        return 0

    def save_config_space(self, adapter):
        """Snapshot PCI config space, one dword per kernel call.

        User-level code reaches config space only through the kernel,
        so this is a downcall per dword -- the kind of chatty
        initialization interface behind the paper's crossing counts.
        """
        space = []
        for i in range(64):  # PCI_LEN
            space.append(
                self._down(self.nucleus.k_read_config_dword,
                           extra=((i * 4) % 256,))
            )
        adapter.config_space = space

    def remove_one(self, adapter):
        self._down(self.nucleus.k_stop_watchdog)
        self._down(self.nucleus.k_unregister_netdev)
        self._down(self.nucleus.k_pci_teardown)
        return 0

    # -- open: Figure 4, verbatim structure ------------------------------------------

    def open(self, adapter):
        try:
            # allocate transmit descriptors
            self.setup_all_tx_resources(adapter)
            try:
                # allocate receive descriptors
                self.setup_all_rx_resources(adapter)
                try:
                    self.request_irq(adapter)
                    self.power_up_phy(adapter)
                    self.up(adapter)
                except E1000HWException:
                    self.free_all_rx_resources(adapter)
                    raise
            except DriverException:
                self.free_all_tx_resources(adapter)
                raise
        except DriverException:
            self.reset(adapter)
            raise
        return 0

    def close(self, adapter):
        self.down(adapter)
        self.power_down_phy(adapter)
        self.free_irq(adapter)
        self.free_all_rx_resources(adapter)
        self.free_all_tx_resources(adapter)
        return 0

    # -- resources ----------------------------------------------------------------------

    def setup_all_tx_resources(self, adapter):
        self._down(self.nucleus.k_setup_tx_resources, adapter,
                   exc=ResourceException)

    def setup_all_rx_resources(self, adapter):
        self._down(self.nucleus.k_setup_rx_resources, adapter,
                   exc=ResourceException)

    def free_all_tx_resources(self, adapter):
        self._down(self.nucleus.k_free_tx_resources, adapter)

    def free_all_rx_resources(self, adapter):
        self._down(self.nucleus.k_free_rx_resources, adapter)

    def request_irq(self, adapter):
        self._down(self.nucleus.k_request_irq, exc=E1000HWException)

    def free_irq(self, adapter):
        self._down(self.nucleus.k_free_irq)

    def power_up_phy(self, adapter):
        self.hw.power_up_phy()

    def power_down_phy(self, adapter):
        try:
            self.hw.power_down_phy()
        except E1000HWException:
            pass  # powering down a dead PHY is not fatal on close

    # -- up/down/reset ---------------------------------------------------------------------

    def up(self, adapter):
        self.set_multi(adapter)
        self._lib(self.library.configure_tx, adapter)
        self._lib(self.library.setup_rctl, adapter)
        self._lib(self.library.configure_rx, adapter)
        self._lib(self.library.alloc_rx_buffers, adapter)
        self._down(self.nucleus.k_up, adapter, exc=E1000HWException)

    def down(self, adapter):
        self._down(self.nucleus.k_down, adapter)
        adapter.link_speed = 0
        adapter.link_duplex = 0
        self.reset(adapter)

    def reset(self, adapter):
        self.hw.write_reg(0x01000, 0x00000030)  # PBA
        self.hw.reset_hw()
        self.hw.init_hw()
        self.hw.phy_get_info()

    def reinit_locked(self, adapter):
        # The adapter combolock, acquired from user mode: a semaphore
        # (section 3.1.3).  Kernel-side users (the deferred watchdog)
        # see it held and defer rather than spin.
        with self.nucleus.adapter_lock:
            self.down(adapter)
            self.open_after_reinit(adapter)

    def open_after_reinit(self, adapter):
        self.up(adapter)

    # -- management interface ----------------------------------------------------------------

    def set_multi(self, adapter):
        self.hw.rar_set(list(adapter.hw.mac_addr), 0)
        rctl = self.hw.read_reg(0x00100)
        self.hw.write_reg(0x00100, rctl | 0x00008000)  # BAM
        return 0

    def set_mac(self, adapter, addr):
        if len(addr) != 6:
            raise ConfigException("MAC must be 6 bytes")
        adapter.hw.mac_addr = list(addr)
        if self.hw is not None and self.hw.hw is not adapter.hw:
            # self.hw was bound to the twin marshaled at probe time;
            # later upcalls see fresh twins.  Without this sync the
            # reinit path (init_hw -> init_rx_addrs) re-programs the
            # stale pre-set_mac address into RAL0.
            self.hw.hw.mac_addr = list(addr)
        self.hw.rar_set(list(addr), 0)
        self._down(self.nucleus.k_set_netdev_mac, extra=(bytes(addr),))
        return 0

    def change_mtu(self, adapter, new_mtu, running=0):
        if new_mtu < 68 or new_mtu > 16110:
            raise ConfigException("MTU %d out of range" % new_mtu)
        adapter.hw.max_frame_size = new_mtu + 18
        self._down(self.nucleus.k_set_netdev_mtu, extra=(new_mtu,))
        if running:
            self.reinit_locked(adapter)
        return 0

    def tx_timeout(self, adapter):
        adapter.tx_timeout_count += 1
        self.reinit_locked(adapter)
        return 0

    # -- ethtool-style operations (moved to Java) ------------------------------------------------

    def get_drvinfo(self, adapter):
        return {
            "driver": "e1000",
            "version": "7.0.33-k2-decaf",
            "fw_version": "N/A",
        }

    def get_settings(self, adapter):
        return {
            "speed": adapter.link_speed,
            "duplex": adapter.link_duplex,
            "autoneg": adapter.hw.autoneg,
        }

    def set_settings(self, adapter, autoneg):
        adapter.hw.autoneg = 1 if autoneg else 0
        return 0

    def get_eeprom(self, adapter, offset, words):
        return self.hw.read_eeprom(offset, words)

    def set_eeprom(self, adapter, offset, data):
        self.hw.write_eeprom(offset, data)
        self.hw.update_eeprom_checksum()
        return 0

    def get_ringparam(self, adapter):
        return {
            "tx_pending": adapter.tx_ring.count,
            "rx_pending": adapter.rx_ring.count,
        }

    def set_pauseparam(self, adapter, rx_pause, tx_pause):
        if rx_pause and tx_pause:
            adapter.hw.fc = 3
        elif rx_pause:
            adapter.hw.fc = 1
        elif tx_pause:
            adapter.hw.fc = 2
        else:
            adapter.hw.fc = 0
        self.hw.force_mac_fc()
        return 0

    # -- power management: prime movable code, now fully at user level ----------------------------

    def suspend(self, adapter):
        """Converted e1000_suspend: runs entirely in the decaf driver."""
        running = self._down(self.nucleus.k_netif_running)
        if running:
            self.down(adapter)
        self.save_config_space(adapter)
        try:
            self.hw.power_down_phy()
        except E1000HWException:
            pass  # best-effort, as the original's unchecked call was
        self._down(self.nucleus.k_pci_disable)
        return 0

    def resume(self, adapter):
        self._down(self.nucleus.k_pci_enable, exc=ResourceException)
        self.restore_config_space(adapter)
        self.hw.power_up_phy()
        self.reset(adapter)
        running = self._down(self.nucleus.k_netif_running)
        if running:
            self.up(adapter)
        return 0

    def restore_config_space(self, adapter):
        if adapter.config_space is None:
            raise ConfigException("no saved config space to restore")
        for i, value in enumerate(adapter.config_space):
            self._down(self.nucleus.k_write_config_dword,
                       extra=((i * 4) % 256, value))

    # -- watchdog: runs in the decaf driver via deferred work (section 3.1.3) ---------------------

    def watchdog(self, adapter):
        self.watchdog_runs += 1
        with self.nucleus.adapter_lock:
            return self._watchdog_body(adapter)

    def _watchdog_body(self, adapter):
        try:
            self.hw.check_for_link()
        except E1000HWException:
            return 0  # transient PHY trouble; retry on the next tick

        link_up = bool(self.hw.read_reg(0x00008) & 0x2)  # STATUS.LU
        carrier = self._down(self.nucleus.k_carrier_ok)
        if link_up and not carrier:
            speed, duplex = self.hw.get_speed_and_duplex()
            adapter.link_speed = speed
            adapter.link_duplex = duplex
            self._down(self.nucleus.k_carrier_on)
        elif not link_up and carrier:
            adapter.link_speed = 0
            adapter.link_duplex = 0
            self._down(self.nucleus.k_carrier_off)
        return 0
