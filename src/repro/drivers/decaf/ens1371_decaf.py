"""ens1371 decaf driver: user-level sound logic in managed style.

Codec bring-up, sample-rate programming and the PCM ops (minus
``pointer``) converted from the legacy driver: exceptions instead of
errno chains, and all codec/SRC register pokes performed from user
level through the decaf runtime.
"""

from ..legacy.ens1371 import (
    AC97_MASTER,
    AC97_PCM,
    AC97_VENDOR_ID1,
    AC97_VENDOR_ID2,
    ES_1371_CODEC_PIRD,
    ES_1371_CODEC_RDY,
    ES_1371_CODEC_WIP,
    ES_1371_DAC2_RATE_REG,
    ES_1371_SRC_RAM_BUSY,
    ES_1371_SRC_RAM_WE,
    ES_DAC2_EN,
    ES_P2_INTR_EN,
    ES_P2_MODE_16BIT,
    ES_P2_MODE_STEREO,
    ES_PAGE_DAC,
    ES_REG_1371_CODEC,
    ES_REG_1371_SMPRATE,
    ES_REG_CONTROL,
    ES_REG_DAC2_COUNT,
    ES_REG_DAC2_FRAME,
    ES_REG_DAC2_SIZE,
    ES_REG_MEM_PAGE,
    ES_REG_SERIAL,
    ensoniq,
)
from .exceptions import (
    DriverException,
    HardwareException,
    ResourceException,
    TimeoutException,
)


class Ens1371DecafDriver:
    def __init__(self, rt, nucleus):
        self.rt = rt
        self.nucleus = nucleus
        self._dac2_dma_addr = 0
        self._buffer_bytes = 0
        self.periods_noted = 0

    def _down(self, func, chip=None, extra=None, exc=DriverException):
        args = [(chip, ensoniq)] if chip is not None else []
        return self.nucleus.plumbing.downcall_checked(
            func, args=args, extra=extra, exc_type=exc
        )

    # -- low-level access, from user level ----------------------------------------

    def _wait_src_ready(self, chip):
        for _i in range(500):
            r = self.rt.inl(chip.port + ES_REG_1371_SMPRATE)
            if not r & ES_1371_SRC_RAM_BUSY:
                return r
            self.rt.udelay(1)
        raise TimeoutException("SRC RAM busy")

    def src_write(self, chip, reg, data):
        self._wait_src_ready(chip)
        self.rt.outl((reg << 25) | ES_1371_SRC_RAM_WE | (data & 0xFFFF),
                     chip.port + ES_REG_1371_SMPRATE)

    def codec_write(self, chip, reg, val):
        for _i in range(1000):
            r = self.rt.inl(chip.port + ES_REG_1371_CODEC)
            if not r & ES_1371_CODEC_WIP:
                self.rt.outl((reg << 16) | (val & 0xFFFF),
                             chip.port + ES_REG_1371_CODEC)
                return
            self.rt.udelay(1)
        raise TimeoutException("codec write-in-progress stuck")

    def codec_read(self, chip, reg):
        for _i in range(1000):
            r = self.rt.inl(chip.port + ES_REG_1371_CODEC)
            if not r & ES_1371_CODEC_WIP:
                self.rt.outl((reg << 16) | ES_1371_CODEC_PIRD,
                             chip.port + ES_REG_1371_CODEC)
                for _j in range(1000):
                    r = self.rt.inl(chip.port + ES_REG_1371_CODEC)
                    if r & ES_1371_CODEC_RDY:
                        return r & 0xFFFF
                    self.rt.udelay(1)
                raise TimeoutException("codec read never ready")
            self.rt.udelay(1)
        raise TimeoutException("codec write-in-progress stuck")

    def dac2_rate(self, chip, rate):
        self.src_write(chip, ES_1371_DAC2_RATE_REG, rate)
        chip.dac2_rate = rate

    # -- chip bring-up: converted from snd_ens1371_chip_init ---------------------------

    def chip_init(self, chip):
        self.rt.outl(0, chip.port + ES_REG_CONTROL)
        self.rt.outl(0, chip.port + ES_REG_SERIAL)
        self.rt.msleep(20)

        v1 = self.codec_read(chip, AC97_VENDOR_ID1)
        v2 = self.codec_read(chip, AC97_VENDOR_ID2)
        chip.codec_vendor = (v1 << 16) | v2

        self.codec_write(chip, AC97_MASTER, 0x0000)
        self.codec_write(chip, AC97_PCM, 0x0808)
        self.dac2_rate(chip, 44100)

    # -- probe / remove -------------------------------------------------------------------

    def mixer_init(self, chip):
        """Register the AC97 mixer: codec write from user level plus
        one kernel call per control element -- the chatty registration
        interface behind ens1371's high crossing count (Table 3)."""
        from ..legacy.ens1371 import AC97_MIXER_CONTROLS

        for name, reg in AC97_MIXER_CONTROLS:
            self.codec_write(chip, reg, 0x0808)
            self._down(self.nucleus.k_ctl_add, extra=(name,),
                       exc=ResourceException)

    def probe(self, chip):
        self._down(self.nucleus.k_pci_setup, chip, exc=ResourceException)
        try:
            self._down(self.nucleus.k_request_irq, chip,
                       exc=ResourceException)
            try:
                self.chip_init(chip)
                self._down(self.nucleus.k_new_card,
                           exc=ResourceException)
                self.mixer_init(chip)
                self._down(self.nucleus.k_card_register,
                           exc=ResourceException)
            except DriverException:
                self._down(self.nucleus.k_free_irq, chip)
                raise
        except DriverException:
            self._down(self.nucleus.k_pci_teardown)
            raise
        return 0

    def remove(self, chip):
        self.rt.outl(0, chip.port + ES_REG_CONTROL)
        self.rt.outl(0, chip.port + ES_REG_SERIAL)
        self._down(self.nucleus.k_free_card)
        self._down(self.nucleus.k_free_dac2_buffer)
        self._down(self.nucleus.k_free_irq, chip)
        self._down(self.nucleus.k_pci_teardown)
        return 0

    # -- PCM ops (minus pointer) ---------------------------------------------------------------

    def playback_open(self, chip):
        return 0

    def playback_close(self, chip):
        return 0

    def playback_hw_params(self, chip, buffer_bytes, period_bytes,
                           frame_bytes, rate):
        dma_addr = self._down(self.nucleus.k_alloc_dac2_buffer,
                              extra=(buffer_bytes,),
                              exc=ResourceException)
        self._dac2_dma_addr = dma_addr
        self._buffer_bytes = buffer_bytes
        chip.dac2_size_frames = buffer_bytes // 4
        chip.dac2_period_frames = period_bytes // frame_bytes
        self.dac2_rate(chip, rate)
        return 0

    def playback_prepare(self, chip, sample_bytes, channels, period_bytes,
                         frame_bytes):
        mode = 0
        if sample_bytes == 2:
            mode |= ES_P2_MODE_16BIT
        if channels == 2:
            mode |= ES_P2_MODE_STEREO
        chip.sctrl = mode

        self.rt.outl(ES_PAGE_DAC, chip.port + ES_REG_MEM_PAGE)
        self.rt.outl(self._dac2_dma_addr, chip.port + ES_REG_DAC2_FRAME)
        self.rt.outl(chip.dac2_size_frames - 1,
                     chip.port + ES_REG_DAC2_SIZE)
        self.rt.outl((period_bytes // frame_bytes) - 1,
                     chip.port + ES_REG_DAC2_COUNT)
        self.rt.outl(chip.sctrl, chip.port + ES_REG_SERIAL)
        return 0

    def period_elapsed(self, chip):
        """One-way notification from the interrupt path: a playback
        period completed.  Arrives batched/coalesced at the next sync
        point -- bookkeeping only, since the actual period accounting
        (``snd_pcm_period_elapsed``) already ran in the kernel."""
        self.periods_noted += 1
        return 0

    def playback_trigger(self, chip, cmd):
        if cmd == 1:  # START
            chip.sctrl |= ES_P2_INTR_EN
            self.rt.outl(chip.sctrl, chip.port + ES_REG_SERIAL)
            chip.ctrl |= ES_DAC2_EN
            self.rt.outl(chip.ctrl, chip.port + ES_REG_CONTROL)
            chip.playing = 1
            return 0
        if cmd == 0:  # STOP
            chip.ctrl &= ~ES_DAC2_EN
            self.rt.outl(chip.ctrl, chip.port + ES_REG_CONTROL)
            chip.sctrl &= ~ES_P2_INTR_EN
            self.rt.outl(chip.sctrl, chip.port + ES_REG_SERIAL)
            chip.playing = 0
            return 0
        raise HardwareException("unknown trigger command %r" % (cmd,))
