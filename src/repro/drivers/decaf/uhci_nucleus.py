"""uhci-hcd driver nucleus.

The UHCI host-controller driver is almost entirely data path: URB
enqueue/dequeue, schedule scanning from the interrupt handler, and
port management reached from the irq path.  All of it stays in the
kernel, reusing the legacy functions -- matching the paper's finding
that only 4% of uhci-hcd's functions could move to Java.

What *does* move is the probe/suspend orchestration, implemented in
:class:`~repro.drivers.decaf.uhci_decaf.UhciDecafDriver`.
"""

from ..legacy import uhci_hcd as legacy
from ..legacy.uhci_hcd import (
    DRV_NAME,
    UHCI_DEVICE_ID,
    UHCI_VENDOR_ID,
    UhciHcdOps,
    uhci_hcd_state,
)
from ..linuxapi import LinuxApi
from ..modulebase import DecafDriverModule
from .plumbing import DecafPlumbing
from .uhci_decaf import UhciDecafDriver


class UhciNucleus:
    def __init__(self, kernel, device_model_hook=None):
        self.kernel = kernel
        self.linux = LinuxApi(kernel)
        legacy.linux = self.linux
        legacy._state.__init__()  # fresh driver-global state per load
        legacy._state.device_model_hook = device_model_hook
        self.plumbing = None
        self.decaf = None
        self.pdev = None
        self.rh_poll_timer = None
        self.rh_poll_period_ns = 256_000_000  # fleet slots stretch this
        self.pci_glue = _PciGlue(self)

    def init(self):
        bound = self.kernel.pci.register_driver(self.pci_glue)
        if bound == 0:
            self.kernel.pci.unregister_driver(self.pci_glue)
            return -self.linux.ENODEV
        return 0

    def cleanup(self):
        self.kernel.pci.unregister_driver(self.pci_glue)

    def probe(self, pdev):
        self.pdev = pdev
        self.plumbing = DecafPlumbing(self.kernel, "uhci_hcd",
                                      irq_line=pdev.irq)
        self.decaf = UhciDecafDriver(self.plumbing.decaf_rt, self)
        self.plumbing.decaf_rt.start()

        uhci = uhci_hcd_state()
        uhci.rh_numports = legacy.UHCI_NUM_PORTS
        legacy._state.uhci = uhci
        legacy._state.pdev = pdev
        legacy._state.lock = self.linux.spin_lock_init("uhci")
        self.plumbing.channel.kernel_tracker.register(uhci)

        ret = self.plumbing.upcall(
            self.decaf.probe, args=[(uhci, uhci_hcd_state)]
        )
        if ret:
            legacy._state.uhci = None
        else:
            self.plumbing.record("probe")
        return ret

    def remove(self, pdev):
        if self.decaf is None:
            return
        self.stop_rh_poll()
        self.plumbing.upcall(
            self.decaf.remove, args=[(legacy._state.uhci, uhci_hcd_state)]
        )
        self.decaf = None

    # -- deferred root-hub status poll: timer -> work item -> decaf driver ---------
    #
    # Only runs under supervision: unsupervised rigs keep the seed
    # crossing counts (the uhci data path never invokes the decaf half).

    def supervision_started(self):
        if legacy._state.uhci is not None and self.rh_poll_timer is None:
            self.start_rh_poll()

    def start_rh_poll(self):
        self.rh_poll_timer = self.plumbing.nuclear.defer_timer(
            self._rh_poll_work, name="uhci-rh-poll"
        )
        self.rh_poll_timer.mod_timer_after(self.rh_poll_period_ns)

    def stop_rh_poll(self):
        if self.rh_poll_timer is not None:
            self.rh_poll_timer.del_timer()
            self.rh_poll_timer = None

    def _rh_poll_work(self, _data):
        if self.decaf is None or legacy._state.uhci is None:
            return
        self.plumbing.upcall(
            self.decaf.rh_status_check,
            args=[(legacy._state.uhci, uhci_hcd_state)],
        )
        if self.rh_poll_timer is not None:
            self.rh_poll_timer.mod_timer_after(self.rh_poll_period_ns)

    # -- kernel entry points ------------------------------------------------------

    def k_pci_setup(self, uhci):
        err = self.linux.pci_enable_device(self.pdev)
        if err:
            return err
        err = self.linux.pci_request_regions(self.pdev, DRV_NAME)
        if err:
            self.linux.pci_disable_device(self.pdev)
            return err
        uhci.io_addr = self.linux.pci_resource_start(self.pdev, 0)
        uhci.irq = self.pdev.irq
        return 0

    def k_pci_teardown(self):
        self.linux.pci_release_regions(self.pdev)
        self.linux.pci_disable_device(self.pdev)
        return 0

    def k_reset_hc(self, uhci):
        return legacy.uhci_reset_hc(uhci)

    def k_request_irq(self, uhci):
        return self.linux.request_irq(uhci.irq, legacy.uhci_irq,
                                      DRV_NAME, legacy._state.uhci)

    def k_free_irq(self, uhci):
        self.linux.free_irq(uhci.irq, legacy._state.uhci)
        return 0

    def k_start(self, uhci):
        # Starts the schedule and registers the HCD with the USB core;
        # kernel-resident because the schedule is the data path.
        err = legacy.uhci_start(legacy._state.uhci)
        if err:
            return err
        legacy._state.hcd_ops = UhciHcdOps()
        self.linux.usb_register_hcd(legacy._state.hcd_ops)
        legacy.uhci_scan_ports(legacy._state.uhci)
        return 0

    def k_stop(self, uhci):
        self.stop_rh_poll()
        for device in list(legacy._state.port_devices):
            self.linux.usb_disconnect_device(device)
        legacy._state.port_devices = []
        if legacy._state.hcd_ops is not None:
            self.linux.usb_unregister_hcd(legacy._state.hcd_ops)
            legacy._state.hcd_ops = None
        legacy.uhci_stop(legacy._state.uhci)
        return 0

    def k_port_status(self, port):
        uhci = legacy._state.uhci
        if uhci is None:
            return -self.linux.ENODEV
        return legacy.uhci_readw(uhci, legacy.PORTSC1 + port * 2)

    def k_schedule_running(self):
        uhci = legacy._state.uhci
        if uhci is None:
            return 0
        return 0 if uhci.is_stopped else 1

    # -- supervised recovery ------------------------------------------------------

    def fault_quiesce(self):
        """Kernel-side quiesce after a user-half failure (no upcalls).

        Only the root-hub poll is stopped.  The schedule, the irq and
        the attached devices stay up: uhci-hcd's data path is entirely
        kernel-resident, so a user-half crash must not disconnect the
        flash disk mid-transfer (that asymmetry is the point of the
        4%-converted split).
        """
        self.stop_rh_poll()
        return 0

    def rebuild_user_half(self):
        self.decaf = UhciDecafDriver(self.plumbing.decaf_rt, self)

    def replay_op(self, op, args):
        if op == "probe":
            # The controller is still running; replay maps the probe to
            # a light reattach that verifies it rather than re-running
            # bring-up against live hardware.
            ret = self.plumbing.upcall(
                self.decaf.reattach,
                args=[(legacy._state.uhci, uhci_hcd_state)],
            )
            if ret == 0:
                self.start_rh_poll()
            return ret
        return 0


class _PciGlue:
    name = DRV_NAME
    id_table = ((UHCI_VENDOR_ID, UHCI_DEVICE_ID),)

    def __init__(self, nucleus):
        self.nucleus = nucleus

    def probe(self, kernel, pdev):
        return self.nucleus.probe(pdev)

    def remove(self, kernel, pdev):
        self.nucleus.remove(pdev)

    def matches(self, func):
        return (func.vendor_id, func.device_id) in self.id_table


def make_module(device_model_hook=None):
    def setup(kernel):
        return UhciNucleus(kernel, device_model_hook=device_model_hook)

    return DecafDriverModule(DRV_NAME, setup)
