"""XPC plumbing shared by all decaf drivers.

One :class:`DecafPlumbing` per driver wires together the pieces of the
Decaf architecture: the domain manager, the XPC channel (with the
marshaling plan DriverSlicer produced for this driver), the nuclear
runtime (kernel side), and the decaf runtime (user side).

``slice_plan`` runs the real DriverSlicer pipeline at module load to
obtain the driver's marshaling plan -- the decaf drivers run on
generated metadata, not hand-maintained field lists.
"""

from ...core.domains import DomainManager
from ...core.runtime import DecafRuntime, NuclearRuntime
from ...core.xpc import DriverFailedError, FailurePolicy, Xpc, XpcChannel
from ...recovery.log import ReplayLog
from ..decaf.exceptions import DriverException, errno_of

_PLAN_CACHE = {}

# Decaf-driver classes analyzed per driver (the paper's future-work
# extension: fields only the managed code touches are detected
# automatically instead of via DECAF_XVAR annotations).
_DECAF_CLASSES = {
    "8139too": ("repro.drivers.decaf.rtl8139_decaf", ("Rtl8139DecafDriver",)),
    "e1000": ("repro.drivers.decaf.e1000_decaf", ("E1000DecafDriver",)),
    "ens1371": ("repro.drivers.decaf.ens1371_decaf", ("Ens1371DecafDriver",)),
    "uhci_hcd": ("repro.drivers.decaf.uhci_decaf", ("UhciDecafDriver",)),
    "psmouse": ("repro.drivers.decaf.psmouse_decaf", ("PsmouseDecafDriver",)),
}


def slice_plan(driver_name):
    """MarshalPlan for a driver, from the DriverSlicer pipeline.

    Unions the legacy-source field-access analysis with the automatic
    decaf-source analysis, so the plan covers fields either half of
    the split touches.
    """
    if driver_name not in _PLAN_CACHE:
        import importlib

        from ...slicer import DRIVER_CONFIGS, conversion_report
        from ...slicer.accessanalysis import build_marshal_plan
        from ...slicer.decafanalysis import (
            analyze_decaf_accesses,
            merge_accesses,
        )

        config = DRIVER_CONFIGS[driver_name]
        report = conversion_report(config)
        legacy_accesses = {
            name: access
            for name, access in report["marshal_plan"]._accesses.items()
        }
        module_name, class_names = _DECAF_CLASSES[driver_name]
        module = importlib.import_module(module_name)
        classes = [getattr(module, name) for name in class_names]
        decaf_accesses = analyze_decaf_accesses(classes, config.type_hints)
        merged = merge_accesses(legacy_accesses, decaf_accesses)
        plan = build_marshal_plan(merged, config.extra_access,
                                  kernel_owned=config.kernel_owned)
        _PLAN_CACHE[driver_name] = plan
    return _PLAN_CACHE[driver_name]


class DecafPlumbing:
    def __init__(self, kernel, driver_name, irq_line=None,
                 weak_shared_objects=True, plan=None):
        self.kernel = kernel
        self.driver_name = driver_name
        self.domains = DomainManager()
        self.xpc = Xpc(kernel)
        self.channel = XpcChannel(
            self.xpc,
            self.domains,
            plan if plan is not None else slice_plan(driver_name),
            name=driver_name,
            weak_shared_objects=weak_shared_objects,
        )
        self.nuclear = NuclearRuntime(kernel, self.domains, self.channel,
                                      irq_line=irq_line)
        self.decaf_rt = DecafRuntime(kernel, self.domains, self.channel)
        # Failure boundary: DriverException is the checked error
        # protocol; anything else escaping the user level marks the
        # driver FAILED and notifies the supervisor, if one is attached.
        self.channel.failure_policy = FailurePolicy(
            checked=(DriverException,), on_fault=self._on_fault
        )
        self.replay_log = ReplayLog()
        self.supervisor = None  # attached by repro.recovery.DriverSupervisor
        self.restarts = 0

    def _on_fault(self, exc, callsite):
        if self.supervisor is not None:
            self.supervisor.note_fault(exc, callsite)

    def upcall(self, func, args=(), extra=None):
        """Kernel -> decaf call with exception-to-errno bridging.

        RPC semantics only pass scalars back; a DriverException raised
        by the decaf driver crosses the boundary as its negative errno,
        exactly how the paper's generated stubs report failures to the
        kernel.  An *unchecked* exception is a driver failure: the
        channel contains it (never letting it reach the kernel caller);
        with a supervisor attached the driver is restarted in place and
        the call retried once, otherwise the caller sees the fault's
        errno.
        """
        try:
            ret = self.nuclear.upcall(func, args, extra)
        except DriverException as exc:
            return errno_of(exc)
        except DriverFailedError as exc:
            if self.supervisor is not None and self.supervisor.recover():
                try:
                    ret = self.nuclear.upcall(func, args, extra)
                except DriverException as exc2:
                    return errno_of(exc2)
                except DriverFailedError as exc2:
                    return errno_of(exc2.cause)
                return 0 if ret is None else ret
            return errno_of(exc.cause)
        return 0 if ret is None else ret

    # -- recovery support -------------------------------------------------------

    def record(self, op, *args):
        """Record a configuration call for shadow-driver replay."""
        self.replay_log.record(op, *args)

    def unrecord(self, op):
        self.replay_log.remove(op)

    def restart_user_half(self):
        """Replace the dead user-level half with a fresh one.

        The channel keeps its kernel side (trackers, counters, codec);
        the user side is reset and a new DecafRuntime started -- paying
        the JVM startup cost again, which is the dominant term of the
        paper's recovery latency.
        """
        self.channel.reset_user_side()
        self.decaf_rt = DecafRuntime(self.kernel, self.domains, self.channel)
        self.decaf_rt.start()
        self.restarts += 1

    def notify(self, func, args=(), extra=None):
        """Queue a fire-and-forget kernel -> decaf notification.

        Legal from any context; crosses (batched, coalesced) at the
        channel's next sync point or an explicit
        :meth:`flush_notifications`.
        """
        self.nuclear.notify(func, args, extra)

    def flush_notifications(self):
        """Drain queued notifications in one batched crossing."""
        return self.nuclear.flush_notifications()

    def close(self):
        """Release channel resources (handles, pending notifications).

        Wired into :class:`DecafDriverModule` teardown so long-running
        rigs do not accumulate opaque-handle entries across loads.
        """
        self.channel.close()
        self.xpc.close()

    def downcall_checked(self, func, args=(), extra=None, exc_type=None):
        """Decaf -> kernel call that raises on a negative errno return."""
        ret = self.channel.downcall(func, args, extra)
        if isinstance(ret, int) and ret < 0:
            raise (exc_type or DriverException)(
                "%s failed with errno %d" % (getattr(func, "__name__", func),
                                             ret),
                errno=ret,
            )
        return ret
