"""E1000 module-parameter checking, decaf version (case study 5.1).

The legacy ``e1000_param.c`` validates every parameter through one
C switch over option types.  The paper rewrote this as three classes --
"a base class provides basic parameter checking, and the two derived
classes provide additional functionality" -- and used Java hash tables
for the set-membership tests.  This module is that design: the type
system now *forces* a range or a set to be supplied where one is
required, and invalid values raise :class:`ConfigException` (callers
fall back to the default explicitly).
"""

from .exceptions import ConfigException


class Option:
    """Base parameter checker: presence and the enable/disable case."""

    def __init__(self, name, default, err="parameter ignored"):
        self.name = name
        self.default = default
        self.err = err

    def validate(self, value):
        """Return the validated value; raise ConfigException if bad."""
        if value is None:
            return self.default
        if value in (0, 1):
            return value
        raise ConfigException(
            "Invalid %s specified (%r), %s" % (self.name, value, self.err)
        )

    def validate_or_default(self, value):
        try:
            return self.validate(value)
        except ConfigException:
            return self.default


class RangeOption(Option):
    """Derived checker: value must lie in [lo, hi]."""

    def __init__(self, name, default, lo, hi, err="using default"):
        super().__init__(name, default, err)
        self.lo = lo
        self.hi = hi

    def validate(self, value):
        if value is None:
            return self.default
        if self.lo <= value <= self.hi:
            return value
        raise ConfigException(
            "Invalid %s specified (%r), %s of %r"
            % (self.name, value, self.err, self.default)
        )


class ListOption(Option):
    """Derived checker: set membership, via a hash set (the paper's
    'Java hash tables in the set-membership tests')."""

    def __init__(self, name, default, valid, err="using default"):
        super().__init__(name, default, err)
        self.valid = frozenset(valid)

    def validate(self, value):
        if value is None:
            return self.default
        if value in self.valid:
            return value
        raise ConfigException(
            "Invalid %s specified (%r), %s of %r"
            % (self.name, value, self.err, self.default)
        )


TX_DESCRIPTORS = RangeOption("Transmit Descriptors", 256, 80, 4096)
RX_DESCRIPTORS = RangeOption("Receive Descriptors", 256, 80, 4096)
FLOW_CONTROL = ListOption("Flow Control", 0xFF, (0, 1, 2, 3, 0xFF))
ITR = RangeOption("Interrupt Throttling Rate (ints/sec)", 8000, 100, 100000)
SPEED = ListOption("Speed", 0, (0, 10, 100, 1000))
DUPLEX = ListOption("Duplex", 0, (0, 1, 2))
AUTONEG = Option("AutoNeg", 1)


def check_options(adapter, options=None):
    """Validate all module parameters onto the adapter twin."""
    options = options or {}

    adapter.tx_ring.count = TX_DESCRIPTORS.validate_or_default(
        options.get("TxDescriptors")
    ) & ~7
    adapter.rx_ring.count = RX_DESCRIPTORS.validate_or_default(
        options.get("RxDescriptors")
    ) & ~7
    fc = FLOW_CONTROL.validate_or_default(options.get("FlowControl"))
    adapter.hw.fc = fc
    adapter.hw.original_fc = fc
    adapter.itr = ITR.validate_or_default(options.get("InterruptThrottleRate"))

    speed = SPEED.validate_or_default(options.get("Speed"))
    duplex = DUPLEX.validate_or_default(options.get("Duplex"))
    autoneg = AUTONEG.validate_or_default(options.get("AutoNeg"))
    if speed and autoneg:
        autoneg = 1  # AutoNeg wins, as in the original
    adapter.hw.autoneg = autoneg
    adapter.hw.forced_speed_duplex = {
        (10, 1): 0, (10, 2): 1, (100, 1): 2, (100, 2): 3,
    }.get((speed, duplex), 0)
    adapter.hw.autoneg_advertised = 0x2F
