"""E1000 driver nucleus.

Kernel-resident half of the decaf E1000: the interrupt handler,
transmit path and ring cleaning are the legacy functions unchanged;
this module provides the XPC stubs for the interface operations that
moved to Java, the kernel entry points the decaf driver downcalls, and
the watchdog-timer deferral (timer -> work item -> upcall) of section
3.1.3.

The four ethtool diagnostic functions with the interrupt data race
remain here, served directly from the kernel (section 5).
"""

from ..legacy import e1000_ethtool as legacy_ethtool
from ..legacy import e1000_hw as hw_defs
from ..legacy import e1000_main as legacy
from ..legacy.e1000_main import E1000_VENDOR_ID, e1000_adapter
from ..linuxapi import LinuxApi
from ..modulebase import DecafDriverModule
from .e1000_decaf import E1000DecafDriver
from .e1000_lib import E1000DriverLibrary
from .plumbing import DecafPlumbing

DRV_NAME = "e1000"


class E1000Nucleus:
    def __init__(self, kernel):
        self.kernel = kernel
        self.linux = LinuxApi(kernel)
        legacy.linux = self.linux
        legacy._state.__init__()  # fresh driver-global state per load
        hw_defs.linux = self.linux
        legacy_ethtool.linux = self.linux
        self.plumbing = None
        self.decaf = None
        self.library = None
        self.pdev = None
        self.adapter = None
        self.netdev = None
        self.watchdog_timer = None
        self.watchdog_period_ns = 2_000_000_000  # fleet slots stretch this
        self.irq_requested = False
        self.module_options = None
        self.pci_glue = _PciGlue(self)

    # -- module lifecycle ---------------------------------------------------------

    def init(self):
        bound = self.kernel.pci.register_driver(self.pci_glue)
        if bound == 0:
            self.kernel.pci.unregister_driver(self.pci_glue)
            return -self.linux.ENODEV
        return 0

    def cleanup(self):
        self.kernel.pci.unregister_driver(self.pci_glue)

    # -- probe ----------------------------------------------------------------------

    def probe(self, pdev):
        self.pdev = pdev
        self.plumbing = DecafPlumbing(self.kernel, "e1000",
                                      irq_line=pdev.irq)
        self.library = E1000DriverLibrary(self.kernel, self.plumbing.channel,
                                          napi=legacy.napi_mode)
        self.decaf = E1000DecafDriver(self.plumbing.decaf_rt, self,
                                      self.library)
        self.plumbing.decaf_rt.start()

        adapter = e1000_adapter()
        self.adapter = adapter
        legacy._state.adapter = adapter
        legacy._state.pdev = pdev
        legacy._state.tx_lock = self.linux.spin_lock_init("e1000-tx")
        self.plumbing.channel.kernel_tracker.register(adapter)

        # Cross-domain synchronization for adapter state (section
        # 3.1.3): a combolock -- spinlock when only kernel code holds
        # it, semaphore when the decaf driver does.
        from ...core.combolock import ComboLock

        self.adapter_lock = ComboLock(self.kernel, self.plumbing.domains,
                                      "e1000-adapter")
        self.watchdog_skips = 0

        ret = self.plumbing.upcall(
            self.decaf.init_one,
            args=[(adapter, e1000_adapter)],
            extra=(self.module_options,),
        )
        if ret:
            self.adapter = None
            legacy._state.adapter = None
        else:
            self.plumbing.record("probe")
        return ret

    def remove(self, pdev):
        if self.decaf is None or self.adapter is None:
            return
        self.plumbing.upcall(
            self.decaf.remove_one, args=[(self.adapter, e1000_adapter)]
        )
        self.adapter = None
        self.decaf = None

    # -- netdev op stubs (kernel -> decaf) ----------------------------------------------

    def stub_open(self, dev):
        ret = self.plumbing.upcall(
            self.decaf.open, args=[(self.adapter, e1000_adapter)]
        )
        if ret == 0:
            self.plumbing.record("open")
        return ret

    def stub_close(self, dev):
        ret = self.plumbing.upcall(
            self.decaf.close, args=[(self.adapter, e1000_adapter)]
        )
        if ret == 0:
            self.plumbing.unrecord("open")
        return ret

    def stub_set_multi(self, dev):
        ret = self.plumbing.upcall(
            self.decaf.set_multi, args=[(self.adapter, e1000_adapter)]
        )
        if ret == 0:
            self.plumbing.record("set_multi")
        return ret

    def stub_set_mac(self, dev, addr):
        ret = self.plumbing.upcall(
            self.decaf.set_mac, args=[(self.adapter, e1000_adapter)],
            extra=(list(addr),),
        )
        if ret == 0:
            self.plumbing.record("set_mac", list(addr))
        return ret

    def stub_change_mtu(self, dev, new_mtu):
        # netif_running is kernel state the user half cannot read; it
        # rides up with the call so a running adapter is reinitialized
        # with the new frame size (as the legacy driver does).
        ret = self.plumbing.upcall(
            self.decaf.change_mtu, args=[(self.adapter, e1000_adapter)],
            extra=(new_mtu, 1 if dev.netif_running() else 0),
        )
        if ret == 0:
            self.plumbing.record("change_mtu", new_mtu)
        return ret

    def stub_tx_timeout(self, dev):
        return self.plumbing.upcall(
            self.decaf.tx_timeout, args=[(self.adapter, e1000_adapter)]
        )

    def stub_get_stats(self, dev):
        return dev.stats

    # -- watchdog: timer deferred to a work item, body in the decaf driver ----------------

    def start_watchdog(self):
        if self.watchdog_timer is None:
            self.watchdog_timer = self.plumbing.nuclear.defer_timer(
                self._watchdog_work, name="e1000-watchdog"
            )
        self.watchdog_timer.mod_timer_after(self.watchdog_period_ns)

    def _watchdog_work(self, _data):
        if self.decaf is None or self.adapter is None:
            return
        # If the decaf driver holds the adapter combolock (a reinit in
        # progress), this kernel thread would have to sleep on the
        # semaphore; defer to the next tick instead.  The decaf
        # watchdog acquires the lock itself, in user (semaphore) mode.
        if self.adapter_lock.held:
            self.watchdog_skips += 1
        else:
            # The watchdog kick is a one-way notification: queue it
            # (coalescing with any still-pending kick) and flush the
            # batch here, in process context, as one crossing.
            self.plumbing.notify(
                self.decaf.watchdog,
                args=[(self.adapter, e1000_adapter)],
            )
            self.plumbing.flush_notifications()
        if self.watchdog_timer is not None:
            self.watchdog_timer.mod_timer_after(self.watchdog_period_ns)

    def k_stop_watchdog(self):
        if self.watchdog_timer is not None:
            self.watchdog_timer.del_timer()
            self.watchdog_timer = None
        return 0

    # -- kernel entry points (decaf -> kernel) ----------------------------------------------

    def k_pci_setup(self, adapter):
        err = self.linux.pci_enable_device(self.pdev)
        if err:
            return err
        err = self.linux.pci_request_regions(self.pdev, DRV_NAME)
        if err:
            self.linux.pci_disable_device(self.pdev)
            return err
        self.linux.pci_set_master(self.pdev)
        adapter.hw.hw_addr = self.linux.pci_resource_start(self.pdev, 0)
        adapter.hw.device_id = self.pdev.device_id
        adapter.hw.vendor_id = self.pdev.vendor_id
        adapter.hw.revision_id = self.pdev.revision
        adapter.hw.subsystem_id = self.pdev.subsystem_device
        adapter.hw.subsystem_vendor_id = self.pdev.subsystem_vendor
        adapter.tx_ring.count = 256
        adapter.rx_ring.count = 256
        return 0

    def k_pci_teardown(self):
        self.linux.pci_release_regions(self.pdev)
        self.linux.pci_disable_device(self.pdev)
        return 0

    def k_save_config_space(self, adapter):
        legacy.e1000_save_config_space(adapter, self.pdev)
        return 0

    def k_read_config_dword(self, offset):
        return self.linux.pci_read_config_dword(self.pdev, offset)

    def k_write_config_dword(self, offset, value):
        self.linux.pci_write_config_dword(self.pdev, offset, value)
        return 0

    def k_pci_enable(self):
        err = self.linux.pci_enable_device(self.pdev)
        if err:
            return err
        self.linux.pci_set_master(self.pdev)
        return 0

    def k_pci_disable(self):
        self.linux.pci_disable_device(self.pdev)
        return 0

    def k_netif_running(self):
        if self.netdev is None:
            return 0
        return 1 if self.linux.netif_running(self.netdev) else 0

    # -- power-management stubs (pm core -> decaf driver) --------------------------

    def stub_suspend(self):
        return self.plumbing.upcall(
            self.decaf.suspend, args=[(self.adapter, e1000_adapter)]
        )

    def stub_resume(self):
        return self.plumbing.upcall(
            self.decaf.resume, args=[(self.adapter, e1000_adapter)]
        )

    def k_register_netdev(self, adapter):
        if self.netdev is not None:
            # Recovery replay: the kernel-facing netdev survives the
            # user-half restart so applications keep their references
            # and "eth0" its identity; just refresh what probe set.
            dev = self.netdev
            dev.dev_addr = bytes(adapter.hw.mac_addr)
            dev.priv = adapter
            dev.base_addr = adapter.hw.hw_addr
            legacy._state.netdev = dev
            return 0
        dev = self.linux.alloc_etherdev("eth%d")
        dev.dev_addr = bytes(adapter.hw.mac_addr)
        dev.priv = adapter
        dev.open = self.stub_open
        dev.stop = self.stub_close
        dev.hard_start_xmit = legacy.e1000_xmit_frame
        dev.get_stats = self.stub_get_stats
        dev.set_multicast_list = self.stub_set_multi
        dev.set_mac_address = self.stub_set_mac
        dev.change_mtu = self.stub_change_mtu
        dev.tx_timeout = self.stub_tx_timeout
        dev.irq = self.pdev.irq
        dev.base_addr = adapter.hw.hw_addr
        self.netdev = dev
        legacy._state.netdev = dev
        return self.linux.register_netdev(dev)

    def k_unregister_netdev(self):
        if self.netdev is not None:
            self.linux.unregister_netdev(self.netdev)
            self.netdev = None
            legacy._state.netdev = None
        return 0

    def k_setup_tx_resources(self, adapter):
        # All queues: queue 0 into the marshaled adapter, extra queues
        # into kernel-side state (_state.extra_tx_rings) so the XPC
        # wire format is independent of the queue count.
        return legacy.e1000_setup_all_tx_resources(adapter)

    def k_setup_rx_resources(self, adapter):
        return legacy.e1000_setup_all_rx_resources(adapter)

    def k_free_tx_resources(self, adapter):
        legacy.e1000_free_all_tx_resources(adapter)
        return 0

    def k_free_rx_resources(self, adapter):
        legacy.e1000_free_all_rx_resources(adapter)
        return 0

    def k_request_irq(self):
        err = self.linux.request_irq(self.pdev.irq, legacy.e1000_intr,
                                     DRV_NAME, self.netdev)
        if err:
            return err
        self.irq_requested = True
        err = legacy.e1000_request_extra_vectors()
        if err:
            self.linux.free_irq(self.pdev.irq, self.netdev)
            self.irq_requested = False
            return err
        legacy.e1000_set_irq_affinity()
        return 0

    def k_free_irq(self):
        if self.irq_requested:
            # NAPI must be gone (line unmasked) before free_irq: free_irq
            # does not reset the line's disable depth.
            legacy.e1000_napi_del()
            legacy.e1000_free_extra_vectors()
            self.linux.free_irq(self.pdev.irq, self.netdev)
            self.irq_requested = False
        return 0

    def k_up(self, adapter):
        hw = adapter.hw
        # The datapath (interrupt handler, poll, rings) is the legacy
        # code unchanged, so NAPI bring-up is shared with it too.  The
        # user half programs queue 0's registers itself; the extra
        # queues are kernel-side state, configured here.
        legacy.e1000_configure_extra_queues(adapter)
        legacy.e1000_napi_up(self.netdev)
        self.kernel.io.writel(hw_defs.E1000_IMS_ENABLE_MASK,
                              hw.hw_addr + hw_defs.IMS)
        legacy.e1000_irq_enable_extra(adapter)
        self.start_watchdog()
        self.linux.netif_start_queue(self.netdev)
        return 0

    def k_down(self, adapter):
        hw = adapter.hw
        self.kernel.io.writel(0xFFFFFFFF, hw.hw_addr + hw_defs.IMC)
        legacy.e1000_irq_disable_extra(adapter)
        legacy.e1000_napi_down()
        self.k_stop_watchdog()
        self.linux.netif_stop_queue(self.netdev)
        self.linux.netif_carrier_off(self.netdev)
        legacy.e1000_clean_all_tx_rings(adapter)
        legacy.e1000_clean_all_rx_rings(adapter)
        return 0

    def k_carrier_ok(self):
        return 1 if self.linux.netif_carrier_ok(self.netdev) else 0

    def k_carrier_on(self):
        self.linux.netif_carrier_on(self.netdev)
        self.linux.netif_wake_queue(self.netdev)
        return 0

    def k_carrier_off(self):
        self.linux.netif_carrier_off(self.netdev)
        self.linux.netif_stop_queue(self.netdev)
        return 0

    def k_set_netdev_mac(self, addr):
        self.netdev.dev_addr = bytes(addr)
        # Keep the kernel-side adapter twin in sync: later upcalls
        # marshal it out, and a stale hw.mac_addr would make set_multi
        # re-program the old address into RAR0.
        if self.adapter is not None:
            self.adapter.hw.mac_addr = list(addr)
        return 0

    def k_set_netdev_mtu(self, mtu):
        self.netdev.mtu = mtu
        return 0

    # -- supervised recovery ------------------------------------------------------------

    def fault_quiesce(self):
        """Silence the device after a user-half failure; kernel side only.

        Mirrors ``k_down`` plus resource teardown, but never crosses to
        user level (the half that would answer is dead).  The netdev
        stays registered -- its identity is preserved across recovery.
        Returns the number of in-flight TX packets discarded.
        """
        self.k_stop_watchdog()
        adapter = self.adapter
        if adapter is None:
            return 0
        lost = 0
        if self.irq_requested:
            hw = adapter.hw
            tx = adapter.tx_ring
            lost = (tx.next_to_use - tx.next_to_clean) % tx.count
            self.kernel.io.writel(0xFFFFFFFF, hw.hw_addr + hw_defs.IMC)
            legacy.e1000_irq_disable_extra(adapter)
            legacy.e1000_napi_down()
            self.linux.netif_stop_queue(self.netdev)
            self.linux.netif_carrier_off(self.netdev)
            legacy.e1000_clean_all_tx_rings(adapter)
            legacy.e1000_clean_all_rx_rings(adapter)
            self.k_free_irq()
            legacy.e1000_free_all_tx_resources(adapter)
            legacy.e1000_free_all_rx_resources(adapter)
        self.k_pci_teardown()
        return lost

    def rebuild_user_half(self):
        """Fresh user-level instances bound to the restarted runtime."""
        self.library = E1000DriverLibrary(self.kernel, self.plumbing.channel,
                                          napi=legacy.napi_mode)
        self.decaf = E1000DecafDriver(self.plumbing.decaf_rt, self,
                                      self.library)

    def replay_op(self, op, args):
        if op == "probe":
            ret = self.plumbing.upcall(
                self.decaf.init_one,
                args=[(self.adapter, e1000_adapter)],
                extra=(self.module_options,),
            )
            return ret
        if op == "open":
            return self.stub_open(self.netdev)
        if op == "set_multi":
            return self.stub_set_multi(self.netdev)
        if op == "set_mac":
            return self.stub_set_mac(self.netdev, args[0])
        if op == "change_mtu":
            return self.stub_change_mtu(self.netdev, args[0])
        return 0

    # -- diagnostics that stay in the kernel (section 5's data race) ------------------------

    def diag_test(self):
        return legacy_ethtool.e1000_diag_test(self.netdev)


class _PciGlue:
    name = DRV_NAME

    def __init__(self, nucleus):
        self.nucleus = nucleus

    def probe(self, kernel, pdev):
        return self.nucleus.probe(pdev)

    def remove(self, kernel, pdev):
        self.nucleus.remove(pdev)

    def matches(self, func):
        from ...devices.e1000 import E1000_DEVICE_IDS

        return (func.vendor_id == E1000_VENDOR_ID
                and func.device_id in E1000_DEVICE_IDS)


def make_module(options=None, napi=True, num_queues=1, compiled=True):
    def setup(kernel):
        legacy.set_napi_mode(napi)
        legacy.set_num_queues(num_queues)
        legacy.set_compiled_mode(compiled)
        nucleus = E1000Nucleus(kernel)
        nucleus.module_options = options
        return nucleus

    return DecafDriverModule(DRV_NAME, setup)
