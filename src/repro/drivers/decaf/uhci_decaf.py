"""uhci-hcd decaf driver: the thin user-level half.

Only initialization orchestration and power management moved out of
the kernel for uhci-hcd (the paper converted 3 functions, 4% -- the
data path can reach nearly everything else).  The decaf half
sequences controller bring-up through kernel entry points, with
exception-based unwind.
"""

from ..legacy.uhci_hcd import uhci_hcd_state
from .exceptions import DriverException, HardwareException, ResourceException


class UhciDecafDriver:
    def __init__(self, rt, nucleus):
        self.rt = rt
        self.nucleus = nucleus
        self.rh_polls = 0
        self.port_changes = 0
        self._last_status = {}

    def _down(self, func, uhci=None, extra=None, exc=DriverException):
        args = [(uhci, uhci_hcd_state)] if uhci is not None else []
        return self.nucleus.plumbing.downcall_checked(
            func, args=args, extra=extra, exc_type=exc
        )

    def probe(self, uhci):
        """Converted uhci_pci_probe: bring-up with nested unwind."""
        self._down(self.nucleus.k_pci_setup, uhci, exc=ResourceException)
        try:
            self._down(self.nucleus.k_reset_hc, uhci,
                       exc=HardwareException)
            self._down(self.nucleus.k_request_irq, uhci,
                       exc=ResourceException)
            try:
                self._down(self.nucleus.k_start, uhci,
                           exc=HardwareException)
            except DriverException:
                self._down(self.nucleus.k_free_irq, uhci)
                raise
        except DriverException:
            self._down(self.nucleus.k_pci_teardown)
            raise
        return 0

    def remove(self, uhci):
        self._down(self.nucleus.k_stop, uhci)
        self._down(self.nucleus.k_free_irq, uhci)
        self._down(self.nucleus.k_pci_teardown)
        return 0

    def suspend(self, uhci):
        """Converted suspend path: halt the schedule."""
        self._down(self.nucleus.k_stop, uhci)
        uhci.is_stopped = 1
        return 0

    def resume(self, uhci):
        self._down(self.nucleus.k_reset_hc, uhci, exc=HardwareException)
        self._down(self.nucleus.k_start, uhci, exc=HardwareException)
        uhci.is_stopped = 0
        return 0

    # -- periodic root-hub status poll (timer -> work item -> here) ---------------

    def rh_status_check(self, uhci):
        """Poll the root-hub port-status registers for connect changes.

        Management-plane work mid-workload -- and therefore this
        driver's fault-injection point.
        """
        self.rh_polls += 1
        for port in range(uhci.rh_numports):
            status = self._down(self.nucleus.k_port_status, extra=(port,))
            if self._last_status.get(port) is not None \
                    and self._last_status[port] != status:
                self.port_changes += 1
            self._last_status[port] = status
        return 0

    # -- recovery reattach (replayed in place of probe) ---------------------------

    def reattach(self, uhci):
        """Adopt the still-running controller after a user-half restart.

        The schedule never stopped (the data path is kernel-resident);
        reattach just verifies the controller is alive instead of
        re-running bring-up against live hardware.
        """
        if not self._down(self.nucleus.k_schedule_running):
            raise HardwareException("controller schedule stopped")
        self._last_status = {}
        return 0
