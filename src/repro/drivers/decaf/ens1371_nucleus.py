"""ens1371 driver nucleus.

Keeps the interrupt handler and the ``pointer`` op (called from
``snd_pcm_period_elapsed`` in irq context) in the kernel; every other
PCM op -- open, close, hw_params, prepare, trigger -- transfers to the
decaf driver.

This split is only legal on a kernel whose sound library calls driver
ops under a **mutex**: with the stock spinlock library, the prepare/
trigger upcalls would sleep in atomic context.  The nucleus checks at
init and refuses to load otherwise, making the paper's kernel
modification (section 3.1.3) an explicit, testable requirement.
"""

from ..legacy import ens1371 as legacy
from ..legacy.ens1371 import (
    DRV_NAME,
    ENSONIQ_VENDOR_ID,
    ES1371_DEVICE_ID,
    ES_DAC2_EN,
    ES_P2_INTR_EN,
    ES_REG_CONTROL,
    ES_REG_SERIAL,
    ensoniq,
)
from ..linuxapi import LinuxApi
from ..modulebase import DecafDriverModule
from .ens1371_decaf import Ens1371DecafDriver
from .plumbing import DecafPlumbing


class Ens1371Nucleus:
    def __init__(self, kernel):
        self.kernel = kernel
        self.linux = LinuxApi(kernel)
        legacy.linux = self.linux
        legacy._state.__init__()  # fresh driver-global state per load
        self.plumbing = None
        self.decaf = None
        self.pdev = None
        self.card = None
        self.irq_requested = False
        self.pci_glue = _PciGlue(self)

    def init(self):
        if not self.kernel.sound.use_mutex:
            # Stock sound library holds a spinlock around driver ops; a
            # decaf sound driver cannot run on it (section 3.1.3).
            self.kernel.printk(
                "ens1371-decaf: sound library uses spinlocks; "
                "decaf driver requires the mutex-based library"
            )
            return -self.linux.EINVAL
        bound = self.kernel.pci.register_driver(self.pci_glue)
        if bound == 0:
            self.kernel.pci.unregister_driver(self.pci_glue)
            return -self.linux.ENODEV
        return 0

    def cleanup(self):
        self.kernel.pci.unregister_driver(self.pci_glue)

    # -- probe -----------------------------------------------------------------

    def probe(self, pdev):
        self.pdev = pdev
        self.plumbing = DecafPlumbing(self.kernel, "ens1371",
                                      irq_line=pdev.irq)
        self.decaf = Ens1371DecafDriver(self.plumbing.decaf_rt, self)
        self.plumbing.decaf_rt.start()

        chip = ensoniq()
        chip.card_name = "Ensoniq AudioPCI ES1371 (decaf)"
        legacy._state.ensoniq = chip
        legacy._state.lock = self.linux.spin_lock_init("ens1371")
        self.plumbing.channel.kernel_tracker.register(chip)

        ret = self.plumbing.upcall(
            self.decaf.probe, args=[(chip, ensoniq)]
        )
        if ret:
            legacy._state.ensoniq = None
        else:
            self.plumbing.record("probe")
        return ret

    def remove(self, pdev):
        if self.decaf is None:
            return
        self.plumbing.upcall(
            self.decaf.remove, args=[(legacy._state.ensoniq, ensoniq)]
        )
        self.decaf = None

    # -- PCM op stubs (kernel -> decaf; legal under the mutex library) -------------

    def _chip_args(self):
        return [(legacy._state.ensoniq, ensoniq)]

    def stub_open(self, substream):
        substream.private_data = legacy._state.ensoniq
        ret = self.plumbing.upcall(self.decaf.playback_open,
                                   args=self._chip_args())
        if ret == 0:
            self.plumbing.record("pcm_open")
        return ret

    def stub_close(self, substream):
        ret = self.plumbing.upcall(self.decaf.playback_close,
                                   args=self._chip_args())
        substream.private_data = None
        if ret == 0:
            for op in ("pcm_open", "pcm_hw_params", "pcm_prepare",
                       "pcm_trigger"):
                self.plumbing.unrecord(op)
        return ret

    def stub_hw_params(self, substream):
        rt = substream.runtime
        ret = self.plumbing.upcall(
            self.decaf.playback_hw_params,
            args=self._chip_args(),
            extra=(rt.buffer_bytes, rt.period_bytes, rt.frame_bytes(),
                   rt.rate),
        )
        if ret == 0:
            rt.dma_region = legacy._state.dac2_dma
            self.plumbing.record("pcm_hw_params")
        return ret

    def stub_prepare(self, substream):
        rt = substream.runtime
        ret = self.plumbing.upcall(
            self.decaf.playback_prepare,
            args=self._chip_args(),
            extra=(rt.sample_bytes, rt.channels, rt.period_bytes,
                   rt.frame_bytes()),
        )
        if ret == 0:
            self.plumbing.record("pcm_prepare")
        return ret

    def stub_trigger(self, substream, cmd):
        ret = self.plumbing.upcall(
            self.decaf.playback_trigger, args=self._chip_args(),
            extra=(cmd,),
        )
        if ret == 0:
            if cmd:
                self.plumbing.record("pcm_trigger", cmd)
            else:
                self.plumbing.unrecord("pcm_trigger")
        return ret

    # pointer stays in the kernel: irq context (see legacy driver).
    def op_pointer(self, substream):
        return legacy.snd_ens1371_playback_pointer(substream)

    # -- kernel entry points ----------------------------------------------------------

    def k_pci_setup(self, chip):
        err = self.linux.pci_enable_device(self.pdev)
        if err:
            return err
        err = self.linux.pci_request_regions(self.pdev, DRV_NAME)
        if err:
            self.linux.pci_disable_device(self.pdev)
            return err
        chip.port = self.linux.pci_resource_start(self.pdev, 0)
        chip.irq = self.pdev.irq
        return 0

    def k_pci_teardown(self):
        self.linux.pci_release_regions(self.pdev)
        self.linux.pci_disable_device(self.pdev)
        return 0

    def _interrupt(self, irq, dev_id):
        ret = legacy.snd_ens1371_interrupt(irq, dev_id)
        if (ret == self.linux.IRQ_HANDLED and dev_id is not None
                and dev_id.playing and self.decaf is not None):
            # Period-elapsed is a one-way notification for the decaf
            # half; from irq context it may only be *queued* (nothing
            # crosses here).  Repeats coalesce, and the batch rides the
            # next sync-point crossing -- the data path itself stays
            # entirely in the kernel.
            self.plumbing.notify(self.decaf.period_elapsed,
                                 args=self._chip_args())
        return ret

    def k_request_irq(self, chip):
        ret = self.linux.request_irq(
            chip.irq, self._interrupt, DRV_NAME,
            legacy._state.ensoniq,
        )
        if ret == 0:
            self.irq_requested = True
        return ret

    def k_free_irq(self, chip):
        self.linux.free_irq(chip.irq, legacy._state.ensoniq)
        self.irq_requested = False
        return 0

    def k_ctl_add(self, name):
        if self.card is None:
            return -self.linux.EINVAL
        if name in self.card.controls:
            # Recovery replay re-adds the mixer controls; keep them.
            return 0
        return self.linux.snd_ctl_add(self.card, name)

    def k_new_card(self):
        if self.card is not None:
            # Recovery replay: the app still holds the old substream
            # (blocked mid-pcm_write); the card must survive the
            # user-half restart.
            return 0
        card = self.linux.snd_card_new("AudioPCI-decaf")
        pcm = card.new_pcm("ES1371/1")
        pcm.playback.ops = _PcmOpsStub(self)
        legacy._state.card = card
        legacy._state.pcm = pcm
        legacy._state.substream = pcm.playback
        self.card = card
        return 0

    def k_card_register(self):
        if self.card is not None and self.card.registered:
            return 0
        return self.linux.snd_card_register(self.card)

    def k_register_card(self):
        card = self.linux.snd_card_new("AudioPCI-decaf")
        pcm = card.new_pcm("ES1371/1")
        pcm.playback.ops = _PcmOpsStub(self)
        legacy._state.card = card
        legacy._state.pcm = pcm
        legacy._state.substream = pcm.playback
        self.card = card
        return self.linux.snd_card_register(card)

    def k_free_card(self):
        if self.card is not None:
            self.linux.snd_card_free(self.card)
            self.card = None
            legacy._state.card = None
        return 0

    def k_alloc_dac2_buffer(self, nbytes):
        if legacy._state.dac2_dma is not None:
            self.linux.dma_free_coherent(legacy._state.dac2_dma)
        legacy._state.dac2_dma = self.linux.dma_alloc_coherent(
            nbytes, owner=DRV_NAME
        )
        if legacy._state.dac2_dma is None:
            return -self.linux.ENOMEM
        return legacy._state.dac2_dma.dma_addr

    def k_free_dac2_buffer(self):
        if legacy._state.dac2_dma is not None:
            self.linux.dma_free_coherent(legacy._state.dac2_dma)
            legacy._state.dac2_dma = None
        return 0

    # -- supervised recovery ------------------------------------------------------

    def fault_quiesce(self):
        """Kernel-side quiesce after a user-half failure (no upcalls).

        Silences DAC2 and its interrupt directly through the registers
        (the dead driver can't be asked to), then drops the irq and the
        PCI claim.  The card, pcm and substream survive -- the app is
        blocked mid-``pcm_write`` on the old substream.
        """
        chip = legacy._state.ensoniq
        if chip is None:
            return 0
        if self.irq_requested:
            chip.ctrl &= ~ES_DAC2_EN
            self.kernel.io.outl(chip.ctrl, chip.port + ES_REG_CONTROL)
            chip.sctrl &= ~ES_P2_INTR_EN
            self.kernel.io.outl(chip.sctrl, chip.port + ES_REG_SERIAL)
            chip.playing = False
            self.k_free_irq(chip)
        self.k_pci_teardown()
        return 0

    def rebuild_user_half(self):
        self.decaf = Ens1371DecafDriver(self.plumbing.decaf_rt, self)

    def replay_op(self, op, args):
        if op == "probe":
            return self.plumbing.upcall(
                self.decaf.probe, args=self._chip_args()
            )
        sub = legacy._state.substream
        if op == "pcm_open":
            return self.stub_open(sub)
        if op == "pcm_hw_params":
            return self.stub_hw_params(sub)
        if op == "pcm_prepare":
            return self.stub_prepare(sub)
        if op == "pcm_trigger":
            return self.stub_trigger(sub, args[0])
        return 0


class _PcmOpsStub:
    """Ops table whose entries are the nucleus's XPC stubs."""

    def __init__(self, nucleus):
        self._n = nucleus

    def open(self, substream):
        return self._n.stub_open(substream)

    def close(self, substream):
        return self._n.stub_close(substream)

    def hw_params(self, substream):
        return self._n.stub_hw_params(substream)

    def prepare(self, substream):
        return self._n.stub_prepare(substream)

    def trigger(self, substream, cmd):
        return self._n.stub_trigger(substream, cmd)

    def pointer(self, substream):
        return self._n.op_pointer(substream)


class _PciGlue:
    name = DRV_NAME
    id_table = ((ENSONIQ_VENDOR_ID, ES1371_DEVICE_ID),)

    def __init__(self, nucleus):
        self.nucleus = nucleus

    def probe(self, kernel, pdev):
        return self.nucleus.probe(pdev)

    def remove(self, kernel, pdev):
        self.nucleus.remove(pdev)

    def matches(self, func):
        return (func.vendor_id, func.device_id) in self.id_table


def make_module():
    return DecafDriverModule(DRV_NAME, Ens1371Nucleus)
