"""8139too driver nucleus.

The kernel-resident half of the decaf 8139too driver.  The
performance-critical functions -- interrupt handler, transmit, receive
-- are the *same code* as the legacy driver (DriverSlicer leaves them
in place); this module adds what the slicer generates around them:

* XPC entry stubs for the driver-interface operations that moved to the
  decaf driver (open, close, rx_mode, stats, ...);
* kernel entry points the decaf driver calls back into (chip reset,
  ring allocation, irq setup);
* deferral of the link-watch timer to a work item so its body may run
  at user level (section 3.1.3).
"""

from ..legacy import rtl8139 as legacy
from ..legacy.rtl8139 import (
    DRV_NAME,
    RTL8139_DEVICE_ID,
    RTL8139_VENDOR_ID,
    rtl8139_private,
    rtl8139_stats,
)
from ..modulebase import DecafDriverModule
from ..linuxapi import LinuxApi
from .plumbing import DecafPlumbing
from .rtl8139_decaf import Rtl8139DecafDriver


class Rtl8139Nucleus:
    def __init__(self, kernel):
        self.kernel = kernel
        self.linux = LinuxApi(kernel)
        legacy.linux = self.linux
        legacy._state.__init__()  # fresh driver-global state per load
        self.plumbing = None  # created on probe (needs the irq line)
        self.decaf = None
        self.pdev = None
        self.link_work_timer = None
        self.link_poll_period_ns = 2_000_000_000  # fleet slots stretch this
        self.irq_requested = False
        self.pci_glue = _PciGlue(self)

    # -- module lifecycle ------------------------------------------------------

    def init(self):
        bound = self.kernel.pci.register_driver(self.pci_glue)
        if bound == 0:
            self.kernel.pci.unregister_driver(self.pci_glue)
            return -self.linux.ENODEV
        return 0

    def cleanup(self):
        self.kernel.pci.unregister_driver(self.pci_glue)

    # -- probe path: kernel stub -> decaf driver ---------------------------------

    def probe(self, pdev):
        self.pdev = pdev
        self.plumbing = DecafPlumbing(self.kernel, "8139too",
                                      irq_line=pdev.irq)
        self.decaf = Rtl8139DecafDriver(self.plumbing.decaf_rt, self)
        self.plumbing.decaf_rt.start()

        tp = rtl8139_private()
        tp.msg_enable = 7
        tp.stats = rtl8139_stats()
        legacy._state.tp = tp
        self.plumbing.channel.kernel_tracker.register(tp)
        self.plumbing.channel.kernel_tracker.register(tp.stats)

        ret = self.plumbing.upcall(
            self.decaf.init_one,
            args=[(tp, rtl8139_private)],
        )
        if ret:
            legacy._state.tp = None
        else:
            self.plumbing.record("probe")
        return ret

    def remove(self, pdev):
        if self.decaf is None:
            return
        self.plumbing.upcall(self.decaf.remove_one)
        self.decaf = None

    # -- netdev ops: stubs that transfer to user level -----------------------------

    def stub_open(self, dev):
        ret = self.plumbing.upcall(
            self.decaf.open, args=[(legacy._state.tp, rtl8139_private)]
        )
        if ret == 0:
            self.plumbing.record("open")
        return ret

    def stub_close(self, dev):
        ret = self.plumbing.upcall(
            self.decaf.close, args=[(legacy._state.tp, rtl8139_private)]
        )
        if ret == 0:
            self.plumbing.unrecord("open")
        return ret

    def stub_get_stats(self, dev):
        # Cheap accessor: served from the kernel copy, as the real
        # driver nucleus does for hot paths.
        return dev.stats

    def stub_set_rx_mode(self, dev):
        # rx_mode programming is reachable from the data path too
        # (rtl8139_hw_start); the kernel implementation is reused.
        return legacy.rtl8139_set_rx_mode(dev)

    def stub_set_mac_address(self, dev, addr):
        ret = self.plumbing.upcall(
            self.decaf.set_mac_address,
            args=[(legacy._state.tp, rtl8139_private)],
            extra=(list(addr),),
        )
        if ret == 0:
            # The netdev is kernel state; mirror what the legacy driver
            # does after programming IDR (the user half only sees tp).
            dev.dev_addr = bytes(addr)
            self.plumbing.record("set_mac", list(addr))
        return ret

    def stub_tx_timeout(self, dev):
        # Must run at high priority; stays kernel.
        return legacy.rtl8139_tx_timeout(dev)

    # -- deferred link watch: timer -> work item -> decaf driver ---------------------

    def start_link_watch(self):
        self.link_work_timer = self.plumbing.nuclear.defer_timer(
            self._link_watch_work, name="8139too-thread"
        )
        self.link_work_timer.mod_timer_after(self.link_poll_period_ns)

    def stop_link_watch(self):
        if self.link_work_timer is not None:
            self.link_work_timer.del_timer()
            self.link_work_timer = None

    def _link_watch_work(self, _data):
        if self.decaf is None or legacy._state.tp is None:
            return
        self.plumbing.upcall(
            self.decaf.thread, args=[(legacy._state.tp, rtl8139_private)]
        )
        if self.link_work_timer is not None:
            self.link_work_timer.mod_timer_after(self.link_poll_period_ns)

    # -- kernel entry points (downcalls from the decaf driver) -----------------------

    def k_init_board(self, tp):
        return legacy.rtl8139_init_board(self.pdev, tp)

    def k_read_mac(self, tp):
        return legacy.read_mac_address(tp)

    def k_chip_reset(self, tp):
        return legacy.rtl8139_chip_reset(tp)

    def k_register_netdev(self, tp):
        if legacy._state.netdev is not None:
            # Recovery replay: keep the registered netdev (and "eth0")
            # alive across the user-half restart; refresh probe output.
            dev = legacy._state.netdev
            dev.dev_addr = bytes(tp.mac_addr)
            dev.priv = tp
            dev.irq = tp.irq
            dev.base_addr = tp.ioaddr
            return 0
        dev = self.linux.alloc_etherdev("eth%d")
        dev.dev_addr = bytes(tp.mac_addr)
        dev.priv = tp
        dev.open = self.stub_open
        dev.stop = self.stub_close
        dev.hard_start_xmit = legacy.rtl8139_start_xmit
        dev.get_stats = self.stub_get_stats
        dev.set_multicast_list = self.stub_set_rx_mode
        dev.set_mac_address = self.stub_set_mac_address
        dev.tx_timeout = self.stub_tx_timeout
        dev.irq = tp.irq
        dev.base_addr = tp.ioaddr
        legacy._state.netdev = dev
        legacy._state.lock = self.linux.spin_lock_init("rtl8139")
        return self.linux.register_netdev(dev)

    def k_unregister_netdev(self):
        if legacy._state.netdev is not None:
            self.linux.unregister_netdev(legacy._state.netdev)
            legacy._state.netdev = None
        self.linux.pci_release_regions(self.pdev)
        self.linux.pci_disable_device(self.pdev)
        return 0

    def k_request_irq(self, tp):
        ret = self.linux.request_irq(
            tp.irq, legacy.rtl8139_interrupt, DRV_NAME, legacy._state.netdev
        )
        if ret == 0:
            self.irq_requested = True
        return ret

    def k_free_irq(self, tp):
        # NAPI must be gone (line unmasked) before free_irq: free_irq
        # does not reset the line's disable depth.
        legacy.rtl8139_napi_del()
        self.linux.free_irq(tp.irq, legacy._state.netdev)
        self.irq_requested = False
        return 0

    def k_alloc_rings(self):
        legacy._state.rx_ring_dma = self.linux.dma_alloc_coherent(
            legacy.RX_BUF_LEN + 16, owner=DRV_NAME
        )
        legacy._state.tx_bufs_dma = self.linux.dma_alloc_coherent(
            legacy.TX_BUF_SIZE * legacy.NUM_TX_DESC, owner=DRV_NAME
        )
        if legacy._state.rx_ring_dma is None or legacy._state.tx_bufs_dma is None:
            legacy.rtl8139_free_rings()
            return -self.linux.ENOMEM
        return 0

    def k_free_rings(self):
        legacy.rtl8139_free_rings()
        return 0

    def k_hw_start(self, tp):
        return legacy.rtl8139_hw_start(legacy._state.netdev)

    def k_netif_stop(self):
        dev = legacy._state.netdev
        self.linux.netif_stop_queue(dev)
        return 0

    def k_check_media(self, tp):
        return 1 if legacy.rtl8139_check_media(legacy._state.netdev, tp) else 0

    # -- supervised recovery ------------------------------------------------------

    def fault_quiesce(self):
        """Kernel-side quiesce after a user-half failure (no upcalls).

        Undoes what the dead driver's open/probe set up on the kernel
        side -- link watch, queue, irq, rings, PCI claim -- leaving the
        netdev registered for the replayed probe to reuse.  Returns the
        number of in-flight TX packets discarded.
        """
        self.stop_link_watch()
        tp = legacy._state.tp
        if tp is None:
            return 0
        lost = 0
        if self.irq_requested:
            lost = max(0, tp.cur_tx - tp.dirty_tx)
            dev = legacy._state.netdev
            if dev is not None:
                self.linux.netif_stop_queue(dev)
                self.linux.netif_carrier_off(dev)
            self.k_free_irq(tp)
            legacy.rtl8139_free_rings()
        self.linux.pci_release_regions(self.pdev)
        self.linux.pci_disable_device(self.pdev)
        return lost

    def rebuild_user_half(self):
        self.decaf = Rtl8139DecafDriver(self.plumbing.decaf_rt, self)

    def replay_op(self, op, args):
        if op == "probe":
            return self.plumbing.upcall(
                self.decaf.init_one,
                args=[(legacy._state.tp, rtl8139_private)],
            )
        if op == "open":
            return self.stub_open(legacy._state.netdev)
        if op == "set_mac":
            return self.stub_set_mac_address(legacy._state.netdev, args[0])
        return 0


class _PciGlue:
    name = DRV_NAME
    id_table = ((RTL8139_VENDOR_ID, RTL8139_DEVICE_ID),)

    def __init__(self, nucleus):
        self.nucleus = nucleus

    def probe(self, kernel, pdev):
        return self.nucleus.probe(pdev)

    def remove(self, kernel, pdev):
        self.nucleus.remove(pdev)

    def matches(self, func):
        return (func.vendor_id, func.device_id) in self.id_table


def make_module(napi=True, compiled=True):
    def setup(kernel):
        legacy.set_napi_mode(napi)
        legacy.set_compiled_mode(compiled)
        return Rtl8139Nucleus(kernel)

    return DecafDriverModule(DRV_NAME, setup)
