"""8139too decaf driver: the user-level half, in managed style.

The functions DriverSlicer moved out of the kernel, rewritten the way
the paper's case study rewrites E1000 code: a class instead of free
functions, checked exceptions instead of integer error codes, and
cleanup expressed with nested handlers (Figure 4) instead of goto
chains.  Hardware is touched only through the decaf runtime's helper
routines; kernel-only operations go through downcalls to the nucleus's
kernel entry points.
"""

from .exceptions import (
    ConfigException,
    DriverException,
    HardwareException,
    ResourceException,
)

# Register constants are part of the driver headers, shared by both
# halves of the split (the paper's split keeps definitions in both
# source trees).
from ..legacy.rtl8139 import (
    BMSR,
    CONFIG1,
    CR,
    IDR0,
    IMR,
    MSR,
    MSR_LINKB,
)


class Rtl8139DecafDriver:
    """User-level 8139too logic."""

    def __init__(self, rt, nucleus):
        self.rt = rt          # decaf runtime (helpers: port I/O, sleep)
        self.nucleus = nucleus
        self.plumbing = None  # set after construction by the nucleus
        self.have_thread = False

    # -- helpers ---------------------------------------------------------------

    def _down(self, func, args=(), extra=None, exc=DriverException):
        """Downcall into the nucleus, raising on errno."""
        return self.nucleus.plumbing.downcall_checked(
            func, args=args, extra=extra, exc_type=exc
        )

    # -- probe: converted from rtl8139_init_one ---------------------------------

    def init_one(self, tp):
        """Bring up the board.  Raises on failure (Fig. 4 style)."""
        from ..legacy.rtl8139 import rtl8139_private

        tp.msg_enable = 7
        tp.tx_flag = 0

        self._down(self.nucleus.k_init_board,
                   args=[(tp, rtl8139_private)], exc=HardwareException)
        try:
            self._down(self.nucleus.k_read_mac,
                       args=[(tp, rtl8139_private)], exc=HardwareException)
            try:
                self._down(self.nucleus.k_register_netdev,
                           args=[(tp, rtl8139_private)],
                           exc=ResourceException)
            except DriverException:
                raise
        except DriverException:
            self._down(self.nucleus.k_unregister_netdev)
            raise
        return 0

    def remove_one(self):
        self._down(self.nucleus.k_unregister_netdev)
        return 0

    # -- open/close: converted from rtl8139_open / rtl8139_close ------------------

    def open(self, tp):
        from ..legacy.rtl8139 import rtl8139_private

        self._down(self.nucleus.k_request_irq,
                   args=[(tp, rtl8139_private)], exc=ResourceException)
        try:
            self._down(self.nucleus.k_alloc_rings, exc=ResourceException)
            try:
                tp.tx_flag = 0
                tp.cur_rx = 0
                tp.cur_tx = 0
                tp.dirty_tx = 0
                self._down(self.nucleus.k_hw_start,
                           args=[(tp, rtl8139_private)],
                           exc=HardwareException)
                self.start_thread(tp)
            except DriverException:
                self._down(self.nucleus.k_free_rings)
                raise
        except DriverException:
            self._down(self.nucleus.k_free_irq,
                       args=[(tp, rtl8139_private)])
            raise
        return 0

    def close(self, tp):
        from ..legacy.rtl8139 import rtl8139_private

        self._down(self.nucleus.k_netif_stop)
        # Halt the chip before tearing anything down (as the legacy
        # close does): masked interrupts, rx/tx engines stopped --
        # otherwise the device can keep DMAing into freed rings.
        self.rt.outw(0, tp.ioaddr + IMR)
        self.rt.outb(0, tp.ioaddr + CR)
        self.stop_thread(tp)
        self._down(self.nucleus.k_free_irq, args=[(tp, rtl8139_private)])
        tp.cur_tx = 0
        tp.dirty_tx = 0
        self._down(self.nucleus.k_free_rings)
        return 0

    # -- management: converted user-level functions ---------------------------------

    def set_mac_address(self, tp, addr):
        if len(addr) != 6:
            raise ConfigException("MAC address must be 6 bytes")
        for i, byte in enumerate(addr):
            self.rt.outb(byte, tp.ioaddr + IDR0 + i)
        tp.mac_addr = list(addr)
        return 0

    def get_media_status(self, tp):
        """Read link state directly from user level (mapped I/O)."""
        msr = self.rt.inb(tp.ioaddr + MSR)
        return 0 if msr & MSR_LINKB else 1

    def get_basic_mode_status(self, tp):
        return self.rt.inw(tp.ioaddr + BMSR)

    def read_config1(self, tp):
        return self.rt.inb(tp.ioaddr + CONFIG1)

    # -- the link-watch thread body (runs at user level via deferred work) -----------

    def thread(self, tp):
        """Converted rtl8139_thread: media check every two seconds."""
        from ..legacy.rtl8139 import rtl8139_private

        if not self.have_thread:
            return 0
        self._down(self.nucleus.k_check_media,
                   args=[(tp, rtl8139_private)])
        return 0

    def start_thread(self, tp):
        self.have_thread = True
        tp.have_thread = 1
        self.nucleus.start_link_watch()

    def stop_thread(self, tp):
        self.have_thread = False
        tp.have_thread = 0
        self.nucleus.stop_link_watch()
