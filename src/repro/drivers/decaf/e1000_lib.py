"""E1000 driver library: user-level C helpers (paper section 2.2).

The driver library is the C staging ground at user level.  For E1000
the paper ended with *no* driver-specific functions here ("our current
implementation has no driver functionality implemented in the driver
library") -- everything was converted to Java -- but during migration
the library hosts functions in their original C form.

We keep the ring-programming helpers here permanently as an explicit
demonstration of the staging role: they manipulate raw DMA descriptor
memory through kernel handles, something inexpressible in the managed
language (and thus a legitimate library resident under the paper's own
rules for helper code).
"""

import struct as _pystruct

from ..legacy import e1000_hw as hw_defs
from ..legacy.e1000_main import (
    E1000_RX_DESC_SIZE,
    E1000_RXBUFFER_2048,
    E1000_TX_DESC_SIZE,
)


class E1000DriverLibrary:
    """User-level C half of the split: raw-memory helpers."""

    def __init__(self, kernel, channel, napi=True):
        self.kernel = kernel
        self.channel = channel
        self.napi = napi
        self.calls = 0

    def _region(self, handle):
        region = self.channel.object_of(handle)
        if region is None or isinstance(region, int):
            return None
        return region

    def _writel(self, hw_addr, reg, value):
        self.kernel.io.writel(value, hw_addr + reg)

    # -- ring programming (raw descriptor memory) ---------------------------------

    def configure_tx(self, adapter):
        """Program the transmit ring registers from user-level C."""
        self.calls += 1
        tx_ring = adapter.tx_ring
        desc = self._region(tx_ring.desc)
        if desc is None:
            return -22  # -EINVAL
        hw_addr = adapter.hw.hw_addr
        self._writel(hw_addr, hw_defs.TDBAL, desc.dma_addr & 0xFFFFFFFF)
        self._writel(hw_addr, hw_defs.TDBAH, desc.dma_addr >> 32)
        self._writel(hw_addr, hw_defs.TDLEN,
                     tx_ring.count * E1000_TX_DESC_SIZE)
        self._writel(hw_addr, hw_defs.TDH, 0)
        self._writel(hw_addr, hw_defs.TDT, 0)
        self._writel(hw_addr, hw_defs.TIPG, 0x00602008)
        self._writel(hw_addr, hw_defs.TCTL,
                     hw_defs.E1000_TCTL_EN | hw_defs.E1000_TCTL_PSP)
        tx_ring.next_to_use = 0
        tx_ring.next_to_clean = 0
        return 0

    def setup_rctl(self, adapter):
        self.calls += 1
        self._writel(adapter.hw.hw_addr, hw_defs.RCTL,
                     hw_defs.E1000_RCTL_EN | hw_defs.E1000_RCTL_BAM)
        return 0

    def configure_rx(self, adapter):
        self.calls += 1
        rx_ring = adapter.rx_ring
        desc = self._region(rx_ring.desc)
        if desc is None:
            return -22
        hw_addr = adapter.hw.hw_addr
        self._writel(hw_addr, hw_defs.RDBAL, desc.dma_addr & 0xFFFFFFFF)
        self._writel(hw_addr, hw_defs.RDBAH, desc.dma_addr >> 32)
        self._writel(hw_addr, hw_defs.RDLEN,
                     rx_ring.count * E1000_RX_DESC_SIZE)
        self._writel(hw_addr, hw_defs.RDH, 0)
        self._writel(hw_addr, hw_defs.RDT, 0)
        if self.napi:
            # Same throttle the legacy NAPI path programs (4000 ints/s
            # in 256 ns units); without it the decaf device interrupts
            # per-packet while legacy batches.
            self._writel(hw_addr, hw_defs.ITR,
                         1_000_000_000 // (4000 * 256))
        rx_ring.next_to_use = 0
        rx_ring.next_to_clean = 0
        return 0

    def alloc_rx_buffers(self, adapter):
        """Point every rx descriptor at its buffer slot (raw memory)."""
        self.calls += 1
        rx_ring = adapter.rx_ring
        desc = self._region(rx_ring.desc)
        bufs = self._region(rx_ring.buffer_region)
        if desc is None or bufs is None:
            return -22
        for i in range(rx_ring.count):
            _pystruct.pack_into(
                "<QHHBBH", desc.data, i * E1000_RX_DESC_SIZE,
                bufs.dma_addr + i * E1000_RXBUFFER_2048, 0, 0, 0, 0, 0,
            )
        rx_ring.next_to_use = rx_ring.count - 1
        self._writel(adapter.hw.hw_addr, hw_defs.RDT, rx_ring.count - 1)
        rx_ring.rdt = rx_ring.count - 1
        return 0
