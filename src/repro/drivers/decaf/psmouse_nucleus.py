"""psmouse driver nucleus.

The interrupt-side byte decoder and the PS/2 command engine stay in
the kernel (the command engine's responses arrive through the
interrupt handler); detection and initialization -- most of psmouse's
code -- run in the decaf driver, issuing commands through the
``k_ps2_command`` kernel entry point.
"""

from ..legacy import psmouse as legacy
from ..legacy.psmouse import DRV_NAME, psmouse_struct
from ..linuxapi import LinuxApi
from ..modulebase import DecafDriverModule
from .plumbing import DecafPlumbing
from .psmouse_decaf import PsmouseDecafDriver


class PsmouseNucleus:
    def __init__(self, kernel):
        self.kernel = kernel
        self.linux = LinuxApi(kernel)
        legacy.linux = self.linux
        legacy._state.__init__()  # fresh driver-global state per load
        self.plumbing = None
        self.decaf = None
        self.serio = None
        self.port_hint = None  # fleet slots pin their own serio port
        self.resync_timer = None
        self.resync_period_ns = 1_000_000_000  # fleet slots stretch this

    # -- module lifecycle ------------------------------------------------------

    def init(self):
        ports = self.kernel.input.serio_ports
        if not ports:
            return -self.linux.ENODEV
        self.serio = self.port_hint if self.port_hint is not None \
            else ports[0]
        self.plumbing = DecafPlumbing(self.kernel, "psmouse")
        self.decaf = PsmouseDecafDriver(self.plumbing.decaf_rt, self)
        self.plumbing.decaf_rt.start()

        psmouse = psmouse_struct()
        psmouse.state = legacy.PSMOUSE_STATE_INITIALIZING
        legacy._state.psmouse = psmouse
        legacy._state.serio = self.serio
        legacy._state.packet = []
        self.plumbing.channel.kernel_tracker.register(psmouse)

        err = self.serio.open(legacy.psmouse_interrupt)
        if err:
            legacy._state.psmouse = None
            return err

        ret = self.plumbing.upcall(
            self.decaf.connect, args=[(psmouse, psmouse_struct)]
        )
        if ret:
            self.serio.close()
            legacy._state.psmouse = None
        else:
            self.plumbing.record("connect")
        return ret

    def cleanup(self):
        self.stop_resync()
        if self.decaf is not None and legacy._state.psmouse is not None:
            self.plumbing.upcall(
                self.decaf.disconnect,
                args=[(legacy._state.psmouse, psmouse_struct)],
            )
        if self.serio is not None:
            self.serio.close()
        legacy._state.psmouse = None
        legacy._state.input_dev = None

    # -- deferred resync check: timer -> work item -> decaf driver -----------------
    #
    # Only runs under supervision: an unsupervised mouse's decaf half is
    # never invoked by movement (the decoder is interrupt-resident), and
    # the periodic health poll would break that contract.

    def supervision_started(self):
        if legacy._state.psmouse is not None and self.resync_timer is None:
            self.start_resync()

    def start_resync(self):
        self.resync_timer = self.plumbing.nuclear.defer_timer(
            self._resync_work, name="psmouse-resync"
        )
        self.resync_timer.mod_timer_after(self.resync_period_ns)

    def stop_resync(self):
        if self.resync_timer is not None:
            self.resync_timer.del_timer()
            self.resync_timer = None

    def _resync_work(self, _data):
        if self.decaf is None or legacy._state.psmouse is None:
            return
        self.plumbing.upcall(
            self.decaf.resync_check,
            args=[(legacy._state.psmouse, psmouse_struct)],
        )
        if self.resync_timer is not None:
            self.resync_timer.mod_timer_after(self.resync_period_ns)

    # -- kernel entry points ------------------------------------------------------

    def k_ps2_command(self, command, params_out, params_in):
        """Run one PS/2 command through the kernel command engine.

        The response bytes arrive via the interrupt handler, which is
        why the engine cannot move to user level.
        Returns (errno, responses).
        """
        return legacy.ps2_command(command, params_out, tuple(params_in))

    def k_register_input_device(self, psmouse):
        if legacy._state.input_dev is not None:
            # Recovery replay: the input device (and whatever readers
            # hold it) survives the user-half restart.
            return 0
        input_dev = self.linux.input_allocate_device(psmouse.name)
        input_dev.set_capability(legacy.EV_KEY, legacy.BTN_LEFT)
        input_dev.set_capability(legacy.EV_KEY, legacy.BTN_RIGHT)
        input_dev.set_capability(legacy.EV_KEY, legacy.BTN_MIDDLE)
        input_dev.set_capability(legacy.EV_REL, legacy.REL_X)
        input_dev.set_capability(legacy.EV_REL, legacy.REL_Y)
        if psmouse.pktsize == 4:
            input_dev.set_capability(legacy.EV_REL, legacy.REL_WHEEL)
        err = self.linux.input_register_device(input_dev)
        if err:
            return err
        legacy._state.input_dev = input_dev
        return 0

    def k_unregister_input_device(self):
        if legacy._state.input_dev is not None:
            self.linux.input_unregister_device(legacy._state.input_dev)
            legacy._state.input_dev = None
        return 0

    def k_set_state(self, psmouse, state):
        legacy._state.psmouse.state = state
        psmouse.state = state
        return 0

    # -- supervised recovery ------------------------------------------------------

    def fault_quiesce(self):
        """Kernel-side quiesce after a user-half failure (no upcalls).

        Stops the resync timer and drops the mouse back to the
        initializing state so interrupt bytes are discarded until the
        replayed connect re-activates it.  The serio port and input
        device survive the user-half restart.
        """
        self.stop_resync()
        psmouse = legacy._state.psmouse
        if psmouse is None:
            return 0
        psmouse.state = legacy.PSMOUSE_STATE_INITIALIZING
        legacy._state.packet = []
        return 0

    def rebuild_user_half(self):
        self.decaf = PsmouseDecafDriver(self.plumbing.decaf_rt, self)

    def replay_op(self, op, args):
        if op == "connect":
            ret = self.plumbing.upcall(
                self.decaf.connect,
                args=[(legacy._state.psmouse, psmouse_struct)],
            )
            if ret == 0:
                self.start_resync()
            return ret
        return 0


def make_module():
    return DecafDriverModule(DRV_NAME, PsmouseNucleus)
