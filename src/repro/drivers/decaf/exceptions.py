"""Checked exceptions for decaf drivers (paper section 5.1).

The legacy drivers signal errors with integer codes that callers can --
and in 28 documented places in the real E1000, did -- silently drop.
The decaf drivers replace them with this hierarchy; the conversion
helpers at the bottom bridge the two conventions at the XPC boundary,
where RPC semantics require scalar returns.
"""


class DriverException(Exception):
    """Base for all decaf driver exceptions; carries an errno."""

    errno = 5  # EIO default

    def __init__(self, message="", errno=None):
        super().__init__(message)
        if errno is not None:
            self.errno = abs(int(errno))


class HardwareException(DriverException):
    """Device did not respond / failed a handshake."""


class E1000HWException(HardwareException):
    """E1000 chip-layer failure (PHY, EEPROM, MAC)."""


class EepromException(E1000HWException):
    errno = 5


class PhyException(E1000HWException):
    errno = 5


class ConfigException(DriverException):
    errno = 22  # EINVAL


class ResourceException(DriverException):
    """Allocation failure."""

    errno = 12  # ENOMEM


class TimeoutException(HardwareException):
    errno = 110  # ETIMEDOUT


class UsbException(HardwareException):
    """USB transfer or port failure."""


class ProtocolException(HardwareException):
    """Input-device protocol negotiation failure."""

    errno = 19  # ENODEV


def errno_of(exc):
    """Errno for an exception crossing back into the kernel."""
    if isinstance(exc, DriverException):
        return -exc.errno
    return -5  # -EIO


def check(ret, exc_type=DriverException, message=""):
    """Bridge a legacy integer return into an exception.

    Raises when ``ret`` is a nonzero error code; used while functions
    are being converted one at a time (section 5.3's transition mode).
    """
    if ret:
        raise exc_type(message or ("error code %d" % ret), errno=ret)
    return ret
