"""E1000 chip layer, decaf version: the Figure 5 conversion.

The legacy ``e1000_hw.c`` propagates integer codes through
``ret_val = ...; if ret_val: return ret_val`` chains.  This class is
the same logic rewritten the way the paper's case study rewrote it:

* a **class** wrapping the ``e1000_hw`` structure, removing the
  ``hw`` parameter from every internal call (the paper measured 6.5 KB
  of code removed by this change alone);
* **checked exceptions** instead of return codes -- the error chains
  vanish (the paper cut 675 lines, ~8%, from e1000_hw.c);
* reads return their value directly instead of through out-parameters.

Register access goes through the decaf runtime's helper routines
(user-mapped MMIO).
"""

from ..legacy import e1000_hw as hw_defs
from ..legacy.e1000_hw import (
    CTRL, STATUS, EECD, EERD, MDIC, ICR, ICS, IMS, IMC, RCTL, TCTL,
    LEDCTL, MTA, RAL0, VFTA, CRCERRS, FCAL, FCAH, FCT, FCTTV,
    E1000_CTRL_ASDE, E1000_CTRL_FD, E1000_CTRL_FRCDPX, E1000_CTRL_FRCSPD,
    E1000_CTRL_PHY_RST, E1000_CTRL_RFCE, E1000_CTRL_RST, E1000_CTRL_SLU,
    E1000_CTRL_SPD_1000, E1000_CTRL_TFCE,
    E1000_EERD_DONE, E1000_EERD_START,
    E1000_FC_DEFAULT, E1000_FC_FULL, E1000_FC_NONE, E1000_FC_RX_PAUSE,
    E1000_FC_TX_PAUSE,
    E1000_MDIC_ERROR, E1000_MDIC_OP_READ, E1000_MDIC_OP_WRITE,
    E1000_MDIC_READY,
    E1000_RAH_AV, E1000_STATUS_FD, E1000_STATUS_LU,
    E1000_TCTL_PSP,
    EEPROM_CHECKSUM_REG, EEPROM_INIT_CONTROL2_REG, EEPROM_SUM,
    IGP01E1000_E_PHY_ID, IGP01E1000_IEEE_FORCE_GIGA,
    M88E1000_E_PHY_ID, M88E1000_PHY_SPEC_CTRL, M88E1000_PHY_SPEC_STATUS,
    IGP01E1000_PHY_PORT_CONFIG,
    MII_CR_AUTO_NEG_EN, MII_CR_RESET, MII_CR_RESTART_AUTO_NEG,
    MII_SR_AUTONEG_COMPLETE, MII_SR_LINK_STATUS,
    NODE_ADDRESS_SIZE,
    PHY_1000T_CTRL, PHY_1000T_STATUS, PHY_AUTONEG_ADV, PHY_CTRL, PHY_ID1,
    PHY_ID2, PHY_REVISION_MASK, PHY_STATUS,
    DEVICE_ID_TO_MAC_TYPE,
    E1000_PHY_IGP, E1000_PHY_M88, E1000_PHY_UNDEFINED,
    E1000_FFE_CONFIG_ACTIVE, E1000_FFE_CONFIG_ENABLED,
)
from .exceptions import (
    ConfigException,
    E1000HWException,
    EepromException,
    PhyException,
)


class E1000Hw:
    """The e1000_hw structure wrapped as a class (case study, 5.1)."""

    def __init__(self, hw_struct, rt):
        self.hw = hw_struct   # the marshaled e1000_hw twin
        self.rt = rt          # decaf runtime: readl/writel/msleep/udelay

    # -- register access ---------------------------------------------------------

    def read_reg(self, reg):
        return self.rt.readl(self.hw.hw_addr + reg)

    def write_reg(self, reg, value):
        self.rt.writel(value, self.hw.hw_addr + reg)

    def write_flush(self):
        self.read_reg(STATUS)

    def read_reg_array(self, reg, index):
        return self.rt.readl(self.hw.hw_addr + reg + (index << 2))

    def write_reg_array(self, reg, index, value):
        self.rt.writel(value, self.hw.hw_addr + reg + (index << 2))

    # -- MAC setup ------------------------------------------------------------------

    def set_mac_type(self):
        mac_type = DEVICE_ID_TO_MAC_TYPE.get(self.hw.device_id)
        if mac_type is None:
            raise ConfigException(
                "unknown device id %#x" % self.hw.device_id
            )
        self.hw.mac_type = mac_type

    def set_media_type(self):
        self.hw.media_type = 1  # copper

    def reset_hw(self):
        self.write_reg(IMC, 0xFFFFFFFF)
        self.write_reg(RCTL, 0)
        self.write_reg(TCTL, E1000_TCTL_PSP)
        self.write_flush()
        self.rt.msleep(10)
        ctrl = self.read_reg(CTRL)
        self.write_reg(CTRL, ctrl | E1000_CTRL_RST)
        self.rt.msleep(5)
        self.write_reg(IMC, 0xFFFFFFFF)
        self.read_reg(ICR)

    def init_hw(self):
        self.id_led_init()
        self.init_rx_addrs()
        for i in range(128):
            self.write_reg_array(MTA, i, 0)
        self.setup_link()
        self.clear_hw_cntrs()

    def init_rx_addrs(self):
        self.rar_set(self.hw.mac_addr, 0)
        for i in range(1, 16):
            self.write_reg_array(RAL0, i << 1, 0)
            self.write_reg_array(RAL0, (i << 1) + 1, 0)

    def rar_set(self, addr, index):
        rar_low = addr[0] | (addr[1] << 8) | (addr[2] << 16) | (addr[3] << 24)
        rar_high = addr[4] | (addr[5] << 8) | E1000_RAH_AV
        self.write_reg_array(RAL0, index << 1, rar_low)
        self.write_reg_array(RAL0, (index << 1) + 1, rar_high)

    def mta_set(self, hash_value):
        hash_reg = (hash_value >> 5) & 0x7F
        hash_bit = hash_value & 0x1F
        mta = self.read_reg_array(MTA, hash_reg)
        self.write_reg_array(MTA, hash_reg, mta | (1 << hash_bit))

    def hash_mc_addr(self, mc_addr):
        return ((mc_addr[4] >> 4) | (mc_addr[5] << 4)) & 0xFFF

    def clear_vfta(self):
        for offset in range(128):
            self.write_reg_array(VFTA, offset, 0)

    def clear_hw_cntrs(self):
        for i in range(64):
            self.read_reg(CRCERRS + (i << 2))

    def id_led_init(self):
        self.read_eeprom(0x04)
        self.hw.ledctl_default = self.read_reg(LEDCTL)
        self.hw.ledctl_mode1 = self.hw.ledctl_default
        self.hw.ledctl_mode2 = self.hw.ledctl_default

    # -- EEPROM ------------------------------------------------------------------------

    def read_eeprom(self, offset, words=1):
        """Read EEPROM words; returns an int (one word) or list."""
        data = []
        for i in range(words):
            self.write_reg(EERD, ((offset + i) << 8) | E1000_EERD_START)
            self._poll_eerd_done()
            data.append((self.read_reg(EERD) >> 16) & 0xFFFF)
        return data[0] if words == 1 else data

    def _poll_eerd_done(self):
        for _attempt in range(100):
            if self.read_reg(EERD) & E1000_EERD_DONE:
                return
            self.rt.udelay(5)
        raise EepromException("EERD poll timed out")

    def validate_eeprom_checksum(self):
        checksum = 0
        for i in range(EEPROM_CHECKSUM_REG + 1):
            checksum = (checksum + self.read_eeprom(i)) & 0xFFFF
        if checksum != EEPROM_SUM:
            raise EepromException(
                "checksum %#06x != %#06x" % (checksum, EEPROM_SUM)
            )

    def read_mac_addr(self):
        for i in range(0, NODE_ADDRESS_SIZE, 2):
            data = self.read_eeprom(i >> 1)
            self.hw.perm_mac_addr[i] = data & 0xFF
            self.hw.perm_mac_addr[i + 1] = (data >> 8) & 0xFF
        self.hw.mac_addr = list(self.hw.perm_mac_addr)

    def write_eeprom(self, offset, data):
        if offset >= 64:
            raise EepromException("offset %d out of range" % offset)
        self.rt.udelay(50)

    def update_eeprom_checksum(self):
        checksum = 0
        for i in range(EEPROM_CHECKSUM_REG):
            checksum = (checksum + self.read_eeprom(i)) & 0xFFFF
        # Unlike the original (which dropped this error), a write
        # failure now propagates -- one of the 28 fixed cases.
        self.write_eeprom(EEPROM_CHECKSUM_REG, (EEPROM_SUM - checksum) & 0xFFFF)

    # -- PHY ---------------------------------------------------------------------------

    def read_phy_reg(self, reg_addr):
        self.write_reg(MDIC, (reg_addr << 16) | E1000_MDIC_OP_READ)
        for _attempt in range(64):
            mdic = self.read_reg(MDIC)
            if mdic & E1000_MDIC_READY:
                if mdic & E1000_MDIC_ERROR:
                    raise PhyException("MDIC read error, reg %#x" % reg_addr)
                return mdic & 0xFFFF
            self.rt.udelay(50)
        raise PhyException("MDIC read timeout, reg %#x" % reg_addr)

    def write_phy_reg(self, reg_addr, data):
        self.write_reg(
            MDIC, (reg_addr << 16) | E1000_MDIC_OP_WRITE | (data & 0xFFFF)
        )
        for _attempt in range(64):
            mdic = self.read_reg(MDIC)
            if mdic & E1000_MDIC_READY:
                if mdic & E1000_MDIC_ERROR:
                    raise PhyException("MDIC write error, reg %#x" % reg_addr)
                return
            self.rt.udelay(50)
        raise PhyException("MDIC write timeout, reg %#x" % reg_addr)

    def phy_hw_reset(self):
        ctrl = self.read_reg(CTRL)
        self.write_reg(CTRL, ctrl | E1000_CTRL_PHY_RST)
        self.rt.msleep(10)
        self.write_reg(CTRL, ctrl)
        self.rt.msleep(10)

    def phy_reset(self):
        phy_ctrl = self.read_phy_reg(PHY_CTRL)
        self.write_phy_reg(PHY_CTRL, phy_ctrl | MII_CR_RESET)
        self.rt.udelay(1)

    def detect_gig_phy(self):
        phy_id_high = self.read_phy_reg(PHY_ID1)
        self.rt.udelay(20)
        phy_id_low = self.read_phy_reg(PHY_ID2)
        self.hw.phy_id = ((phy_id_high << 16) | phy_id_low) & 0xFFFFFFFF
        self.hw.phy_revision = self.hw.phy_id & ~PHY_REVISION_MASK
        masked = self.hw.phy_id & PHY_REVISION_MASK
        if masked == (M88E1000_E_PHY_ID & PHY_REVISION_MASK):
            self.hw.phy_type = E1000_PHY_M88
        elif masked == (IGP01E1000_E_PHY_ID & PHY_REVISION_MASK):
            self.hw.phy_type = E1000_PHY_IGP
        else:
            self.hw.phy_type = E1000_PHY_UNDEFINED
            raise PhyException("unknown PHY id %#x" % self.hw.phy_id)

    def power_up_phy(self):
        mii_reg = self.read_phy_reg(PHY_CTRL)
        # The original ignored this write's failure; now it propagates.
        self.write_phy_reg(PHY_CTRL, mii_reg & ~0x0800)

    def power_down_phy(self):
        mii_reg = self.read_phy_reg(PHY_CTRL)
        self.write_phy_reg(PHY_CTRL, mii_reg | 0x0800)

    # -- link --------------------------------------------------------------------------

    def setup_link(self):
        if self.hw.fc == E1000_FC_DEFAULT:
            eeprom_data = self.read_eeprom(EEPROM_INIT_CONTROL2_REG)
            if eeprom_data & 0x3000:
                self.hw.fc = E1000_FC_FULL
            else:
                self.hw.fc = E1000_FC_NONE
        self.hw.original_fc = self.hw.fc

        self.setup_copper_link()

        self.write_reg(FCT, 0x8808)
        self.write_reg(FCAH, 0x0100)
        self.write_reg(FCAL, 0x00C28001)
        self.write_reg(FCTTV, self.hw.fc_pause_time)

    def setup_copper_link(self):
        ctrl = self.read_reg(CTRL)
        ctrl |= E1000_CTRL_SLU
        ctrl &= ~(E1000_CTRL_FRCSPD | E1000_CTRL_FRCDPX)
        self.write_reg(CTRL, ctrl)

        self.detect_gig_phy()

        if self.hw.autoneg:
            self.copper_link_autoneg()
        else:
            self.phy_force_speed_duplex()

        for _i in range(10):
            if self.read_phy_reg(PHY_STATUS) & MII_SR_LINK_STATUS:
                self.config_mac_to_phy()
                self.config_fc_after_link_up()
                return
            self.rt.msleep(10)
        # Link may come up later; not an error.

    def copper_link_autoneg(self):
        self.phy_setup_autoneg()
        phy_ctrl = self.read_phy_reg(PHY_CTRL)
        phy_ctrl |= MII_CR_AUTO_NEG_EN | MII_CR_RESTART_AUTO_NEG
        self.write_phy_reg(PHY_CTRL, phy_ctrl)
        if self.hw.wait_autoneg_complete:
            self.wait_autoneg()
        self.hw.get_link_status = 1

    def phy_setup_autoneg(self):
        adv = self.read_phy_reg(PHY_AUTONEG_ADV)
        self.write_phy_reg(PHY_AUTONEG_ADV, adv | 0x01E0)
        self.write_phy_reg(PHY_1000T_CTRL, 0x0300)

    def phy_force_speed_duplex(self):
        phy_ctrl = self.read_phy_reg(PHY_CTRL)
        self.write_phy_reg(PHY_CTRL, phy_ctrl & ~MII_CR_AUTO_NEG_EN)

    def wait_autoneg(self):
        for _i in range(45):
            if self.read_phy_reg(PHY_STATUS) & MII_SR_AUTONEG_COMPLETE:
                return
            self.rt.msleep(10)

    def config_mac_to_phy(self):
        ctrl = self.read_reg(CTRL)
        ctrl |= E1000_CTRL_FRCSPD | E1000_CTRL_FRCDPX
        if self.read_phy_reg(M88E1000_PHY_SPEC_STATUS) & 0x2000:
            ctrl |= E1000_CTRL_FD
        self.write_reg(CTRL, ctrl | E1000_CTRL_SPD_1000)

    def config_fc_after_link_up(self):
        self.force_mac_fc()

    def force_mac_fc(self):
        ctrl = self.read_reg(CTRL)
        fc = self.hw.fc
        if fc == E1000_FC_NONE:
            ctrl &= ~(E1000_CTRL_RFCE | E1000_CTRL_TFCE)
        elif fc == E1000_FC_RX_PAUSE:
            ctrl = (ctrl & ~E1000_CTRL_TFCE) | E1000_CTRL_RFCE
        elif fc == E1000_FC_TX_PAUSE:
            ctrl = (ctrl & ~E1000_CTRL_RFCE) | E1000_CTRL_TFCE
        elif fc == E1000_FC_FULL:
            ctrl |= E1000_CTRL_RFCE | E1000_CTRL_TFCE
        else:
            raise ConfigException("bad flow-control mode %d" % fc)
        self.write_reg(CTRL, ctrl)

    def check_for_link(self):
        self.read_phy_reg(PHY_STATUS)  # latched-low: read twice
        phy_status = self.read_phy_reg(PHY_STATUS)
        if phy_status & MII_SR_LINK_STATUS:
            self.hw.get_link_status = 0
            self.config_dsp_after_link_change(True)
        else:
            self.hw.get_link_status = 1
            self.config_dsp_after_link_change(False)

    def get_speed_and_duplex(self):
        status = self.read_reg(STATUS)
        return 1000, 1 if status & E1000_STATUS_FD else 0

    def config_dsp_after_link_change(self, link_up):
        """Figure 5, decaf side: no ret_val plumbing left."""
        if self.hw.phy_type != E1000_PHY_IGP:
            return
        if link_up:
            speed, _duplex = self.get_speed_and_duplex()
            if speed != 1000:
                return
            if self.hw.dsp_config_state == E1000_FFE_CONFIG_ENABLED:
                phy_data = self.read_phy_reg(0x0019)
                self.write_phy_reg(0x0019, phy_data | 0x0008)
                self.hw.dsp_config_state = E1000_FFE_CONFIG_ACTIVE
        else:
            if self.hw.ffe_config_state == E1000_FFE_CONFIG_ACTIVE:
                phy_saved_data = self.read_phy_reg(0x2F5B)
                self.write_phy_reg(0x2F5B, 0x0003)
                self.rt.msleep(20)
                self.write_phy_reg(0x0000, IGP01E1000_IEEE_FORCE_GIGA)
                self.write_phy_reg(0x2F5B, phy_saved_data)
                self.hw.ffe_config_state = E1000_FFE_CONFIG_ENABLED

    # -- PHY diagnostics (cable length, polarity, downshift, smartspeed) -----------------

    def get_cable_length(self):
        """Returns (min_m, max_m); raises on an unknown length code."""
        if self.hw.phy_type == E1000_PHY_M88:
            phy_data = self.read_phy_reg(M88E1000_PHY_SPEC_STATUS)
            index = (phy_data
                     >> hw_defs.M88E1000_PSSR_CABLE_LENGTH_SHIFT) & 0x7
            if index >= len(hw_defs.M88_CABLE_LENGTH):
                raise PhyException("bad cable length code %d" % index)
            return hw_defs.M88_CABLE_LENGTH[index]
        agc = self.read_phy_reg(hw_defs.IGP_AGC_REG)
        length = (agc & 0x7F) * 5
        return max(0, length - 10), length + 10

    def check_polarity(self):
        if self.hw.phy_type == E1000_PHY_M88:
            phy_data = self.read_phy_reg(M88E1000_PHY_SPEC_STATUS)
            return bool(phy_data & hw_defs.M88E1000_PSSR_REV_POLARITY)
        phy_data = self.read_phy_reg(PHY_STATUS)
        return bool(phy_data & hw_defs.IGP01E1000_PSSR_POLARITY_REVERSED)

    def check_downshift(self):
        if self.hw.phy_type == E1000_PHY_M88:
            phy_data = self.read_phy_reg(M88E1000_PHY_SPEC_STATUS)
            return bool(phy_data & hw_defs.M88E1000_PSSR_DOWNSHIFT)
        return False

    def validate_mdi_setting(self):
        if not self.hw.autoneg and self.hw.mdix:
            raise ConfigException("forced MDI requires autonegotiation")

    def smartspeed(self):
        """The SmartSpeed cycle, exception-style: every PHY failure
        propagates (the original dropped the restart-autoneg write)."""
        if self.hw.phy_type != E1000_PHY_IGP or not self.hw.autoneg:
            return
        if self.hw.smart_speed == 0:
            if not self.check_downshift():
                return
            phy_data = self.read_phy_reg(PHY_1000T_CTRL)
            self.write_phy_reg(PHY_1000T_CTRL, phy_data & ~0x0300)
            phy_ctrl = self.read_phy_reg(PHY_CTRL)
            self.write_phy_reg(
                PHY_CTRL,
                phy_ctrl | MII_CR_AUTO_NEG_EN | MII_CR_RESTART_AUTO_NEG)
            self.hw.smart_speed = 1
            return
        self.hw.smart_speed += 1
        if self.hw.smart_speed > hw_defs.SMART_SPEED_MAX:
            phy_data = self.read_phy_reg(PHY_1000T_CTRL)
            self.write_phy_reg(PHY_1000T_CTRL, phy_data | 0x0300)
            self.hw.smart_speed = 0

    # -- phy info -----------------------------------------------------------------------

    def phy_get_info(self):
        info = hw_defs.e1000_phy_info()
        if self.hw.phy_type == E1000_PHY_IGP:
            data = self.read_phy_reg(IGP01E1000_PHY_PORT_CONFIG)
            info.mdix_mode = (data >> 5) & 1
            status = self.read_phy_reg(PHY_1000T_STATUS)
            info.local_rx = (status >> 13) & 1
            info.remote_rx = (status >> 12) & 1
        else:
            data = self.read_phy_reg(M88E1000_PHY_SPEC_CTRL)
            info.extended_10bt_distance = (data >> 7) & 1
            info.polarity_correction = (data >> 1) & 1
            info.cable_polarity = 1 if self.check_polarity() else 0
            info.downshift = 1 if self.check_downshift() else 0
            info.cable_length = self.get_cable_length()[0]
        self.hw.phy_info = info

    # -- LEDs ---------------------------------------------------------------------------

    def setup_led(self):
        self.hw.ledctl_default = self.read_reg(LEDCTL)
        # Error now propagates (was ignored in the original).
        self.write_phy_reg(0x0018, 0x0021)
        self.write_reg(LEDCTL, self.hw.ledctl_mode1)

    def cleanup_led(self):
        self.write_phy_reg(0x0018, 0x0020)
        self.write_reg(LEDCTL, self.hw.ledctl_default)

    def led_on(self):
        self.write_reg(LEDCTL, self.hw.ledctl_mode2)

    def led_off(self):
        self.write_reg(LEDCTL, self.hw.ledctl_mode1)

    # -- misc --------------------------------------------------------------------------

    def get_bus_info(self):
        self.hw.bus_speed = 3
        self.hw.bus_width = 2
