"""Incremental conversion support (paper sections 2.2 and 5.3).

"When migrating code to Java, it is convenient to move one function at
a time and then test the system. ... The ability to execute either
Java or C versions of a function during development greatly simplified
conversion, as it allowed us to eliminate any new bugs in our Java
implementation by comparing its behavior to that of the original C
code."

:class:`TransitionTable` is that mechanism: each user-level function is
registered with its **driver library** implementation (the original C,
staged at user level) and, once written, its **decaf** implementation.
Dispatch goes to whichever side the function is currently bound to;
flipping a function is one call, and ``compare`` runs both versions on
the same marshaled state to check behavioural equivalence -- the
paper's development methodology as an API.
"""

from ...core.domains import DECAF, DRIVER_LIB

LIBRARY = "library"
DECAF_SIDE = "decaf"


class TransitionError(Exception):
    pass


class TransitionTable:
    """Per-driver registry of user-level functions during migration."""

    def __init__(self, plumbing):
        self.plumbing = plumbing
        self._functions = {}   # name -> {"library": fn, "decaf": fn|None}
        self._binding = {}     # name -> LIBRARY | DECAF_SIDE
        self.library_calls = 0
        self.decaf_calls = 0

    # -- registration ---------------------------------------------------------

    def register(self, name, library_impl, decaf_impl=None):
        """Register a user-level function.

        It starts bound to the driver library (the freshly-split C
        code); the decaf implementation may be added later.
        """
        self._functions[name] = {LIBRARY: library_impl,
                                 DECAF_SIDE: decaf_impl}
        self._binding[name] = LIBRARY

    def add_decaf_implementation(self, name, decaf_impl):
        entry = self._require(name)
        entry[DECAF_SIDE] = decaf_impl

    def _require(self, name):
        try:
            return self._functions[name]
        except KeyError:
            raise TransitionError("unknown function %r" % name) from None

    # -- migration state --------------------------------------------------------

    def convert(self, name):
        """Flip one function from the library to the decaf driver."""
        entry = self._require(name)
        if entry[DECAF_SIDE] is None:
            raise TransitionError(
                "%s has no decaf implementation yet" % name)
        self._binding[name] = DECAF_SIDE

    def revert(self, name):
        """Flip back to C (e.g. after finding a bug in the rewrite)."""
        self._require(name)
        self._binding[name] = LIBRARY

    def binding(self, name):
        self._require(name)
        return self._binding[name]

    def conversion_progress(self):
        """(converted, total) -- the migration status."""
        converted = sum(1 for b in self._binding.values()
                        if b == DECAF_SIDE)
        return converted, len(self._binding)

    def unconverted(self):
        return sorted(name for name, b in self._binding.items()
                      if b == LIBRARY)

    # -- dispatch ------------------------------------------------------------------

    def call(self, name, *args):
        """Invoke the currently-bound implementation (at user level).

        Library calls run in the DRIVER_LIB domain; decaf calls cross
        the language boundary into DECAF (Jeannie/JNI in the paper).
        """
        entry = self._require(name)
        side = self._binding[name]
        domains = self.plumbing.domains
        if side == DECAF_SIDE:
            self.decaf_calls += 1
            self.plumbing.xpc.lang_crossings += 1
            self.plumbing.kernel.consume(
                self.plumbing.kernel.costs.xpc_lang_ns,
                busy=True, category="xpc")
            with domains.entered(DECAF):
                return entry[DECAF_SIDE](*args)
        self.library_calls += 1
        with domains.entered(DRIVER_LIB):
            return entry[LIBRARY](*args)

    # -- the development methodology -------------------------------------------------

    def compare(self, name, *args, key=None):
        """Run both implementations and compare their results.

        ``key`` optionally projects the return values before comparison
        (for results carrying incidental identity).  Returns the decaf
        result; raises :class:`TransitionError` on divergence -- the
        "eliminate any new bugs by comparing behavior" loop.
        """
        entry = self._require(name)
        if entry[DECAF_SIDE] is None:
            raise TransitionError(
                "%s has no decaf implementation to compare" % name)
        domains = self.plumbing.domains
        with domains.entered(DRIVER_LIB):
            c_result = entry[LIBRARY](*args)
        with domains.entered(DECAF):
            java_result = entry[DECAF_SIDE](*args)
        project = key or (lambda x: x)
        if project(c_result) != project(java_result):
            raise TransitionError(
                "%s diverges: C returned %r, decaf returned %r"
                % (name, c_result, java_result))
        return java_result
