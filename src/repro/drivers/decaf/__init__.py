"""Decaf drivers: the conversion outputs.

Each driver is split per the DriverSlicer partition into

* a **nucleus** module (``<name>_nucleus``): the kernel-resident
  functions (interrupt handler, data path) -- the same code as the
  legacy driver -- plus the XPC entry stubs that transfer driver
  interface calls to user level; and
* a **decaf** module (``<name>_decaf``): the user-level driver in
  managed style -- classes, checked exceptions instead of errno
  returns, collections -- running in the DECAF domain and touching the
  kernel only through marshaled XPC objects and the decaf runtime's
  helper routines.

``exceptions`` defines the checked-exception hierarchy the paper's
case study introduces (section 5.1, Figures 4-5).
"""
