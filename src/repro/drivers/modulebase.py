"""Module glue shared by legacy and decaf drivers.

A :class:`LegacyDriverModule` binds one legacy driver source module (its
``linux`` global, its PCI glue) into a loadable :class:`KernelModule`.
Decaf drivers use :class:`DecafDriverModule`, which additionally owns
the XPC plumbing and the decaf runtime startup.
"""

from ..kernel.module import KernelModule
from .linuxapi import LinuxApi


class LegacyDriverModule(KernelModule):
    def __init__(self, name, driver_module, pci_glue=None,
                 init_fn=None, cleanup_fn=None, extra_modules=()):
        self.name = name
        self.driver_module = driver_module
        self.extra_modules = tuple(extra_modules)
        self.pci_glue = pci_glue
        self.init_fn = init_fn
        self.cleanup_fn = cleanup_fn
        self.linux = None

    def init_module(self, kernel):
        self.linux = LinuxApi(kernel)
        self.driver_module.linux = self.linux
        for module in self.extra_modules:
            module.linux = self.linux
        # Driver-global state (the C file's static variables) must be
        # fresh per load: a previous kernel instance may have left
        # pointers into *its* memory manager behind.
        for module in (self.driver_module,) + self.extra_modules:
            state = getattr(module, "_state", None)
            if state is not None:
                state.__init__()
        if self.init_fn is not None:
            ret = self.init_fn()
            if ret:
                return ret
        if self.pci_glue is not None:
            bound = kernel.pci.register_driver(self.pci_glue)
            if bound == 0:
                kernel.pci.unregister_driver(self.pci_glue)
                from ..kernel.errors import ENODEV

                return -ENODEV
        return 0

    def cleanup_module(self, kernel):
        if self.pci_glue is not None:
            kernel.pci.unregister_driver(self.pci_glue)
        if self.cleanup_fn is not None:
            self.cleanup_fn()


class DecafDriverModule(KernelModule):
    """A decaf driver: nucleus (kernel) + decaf driver (user, managed).

    ``setup(kernel)`` must return an object with ``pci_glue`` (optional)
    and ``init()``/``cleanup()``; it is built by the driver's nucleus
    module and wires XPC, the runtimes and the decaf-driver instance.
    """

    def __init__(self, name, setup):
        self.name = name
        self._setup = setup
        self.instance = None

    def init_module(self, kernel):
        self.instance = self._setup(kernel)
        ret = self.instance.init()
        if ret:
            self.instance = None
        return ret

    def cleanup_module(self, kernel):
        if self.instance is not None:
            self.instance.cleanup()
            plumbing = getattr(self.instance, "plumbing", None)
            if plumbing is not None:
                plumbing.close()
            self.instance = None
