"""Device drivers: legacy (conversion input) and decaf (conversion output).

``repro.drivers.legacy`` holds the five drivers the paper starts from,
written in deliberately C-idiomatic style (integer errno returns, manual
cleanup chains, module-level functions named as in the Linux source)
against the :mod:`repro.drivers.linuxapi` facade -- the "kernel headers".

``repro.drivers.decaf`` holds the converted drivers: a small driver
nucleus that stays in the kernel plus a managed-language decaf driver
using exceptions, classes and the decaf runtime, communicating through
XPC exactly as produced by DriverSlicer.
"""
