"""The Linux kernel API surface drivers program against.

This is the reproduction's equivalent of the kernel headers: a facade
over the simulated kernel exposing the C function names drivers call
(``pci_enable_device``, ``request_irq``, ``netif_stop_queue``,
``snd_card_register``...).  Legacy drivers hold a module-global
``linux`` bound at ``insmod`` time, so their bodies read like the C
originals, and DriverSlicer classifies ``linux.X(...)`` calls as kernel
entry points by name.
"""

from ..kernel.errors import (
    EBUSY,
    EINVAL,
    EIO,
    ENODEV,
    ENOMEM,
    ETIMEDOUT,
)
from ..kernel.irq import IRQ_HANDLED, IRQ_NONE
from ..kernel.locks import Mutex, SpinLock
from ..kernel.memory import GFP_ATOMIC, GFP_KERNEL
from ..kernel.netdev import NETDEV_TX_BUSY, NETDEV_TX_OK, NetDevice, SkBuff
from ..kernel.sound import (
    SNDRV_PCM_TRIGGER_START,
    SNDRV_PCM_TRIGGER_STOP,
    Ac97Codec,
    SndCard,
)
from ..kernel.timers import KernelTimer, WorkItem


class LinuxApi:
    """C kernel-API names over one simulated kernel instance."""

    # Re-exported constants so driver code reads like C.
    EBUSY = EBUSY
    EINVAL = EINVAL
    EIO = EIO
    ENODEV = ENODEV
    ENOMEM = ENOMEM
    ETIMEDOUT = ETIMEDOUT
    IRQ_HANDLED = IRQ_HANDLED
    IRQ_NONE = IRQ_NONE
    NETDEV_TX_OK = NETDEV_TX_OK
    NETDEV_TX_BUSY = NETDEV_TX_BUSY
    GFP_KERNEL = GFP_KERNEL
    GFP_ATOMIC = GFP_ATOMIC
    SNDRV_PCM_TRIGGER_START = SNDRV_PCM_TRIGGER_START
    SNDRV_PCM_TRIGGER_STOP = SNDRV_PCM_TRIGGER_STOP
    HZ = 1000  # jiffies per second

    def __init__(self, kernel):
        self.kernel = kernel
        # Hot-path passthrough bound once: NAPI delivery runs once per
        # packet and the extra wrapper frame is measurable.
        self.netif_receive_skb = kernel.net.netif_receive_skb

    # -- time ------------------------------------------------------------------

    def jiffies(self):
        return int(self.kernel.clock.now_ms)

    def msleep(self, msecs):
        self.kernel.msleep(msecs)

    def mdelay(self, msecs):
        self.kernel.mdelay(msecs)

    def udelay(self, usecs):
        self.kernel.udelay(usecs)

    def msec_delay_irq(self, msecs):
        # Busy delay usable in irq context (e1000_hw idiom).
        self.kernel.udelay(msecs * 1000)

    def printk(self, message):
        self.kernel.printk(message)

    # -- memory ------------------------------------------------------------------

    def kmalloc(self, size, flags=GFP_KERNEL, owner="driver"):
        return self.kernel.memory.kmalloc(size, flags, owner)

    def kfree(self, alloc):
        self.kernel.memory.kfree(alloc)

    def dma_alloc_coherent(self, size, owner="driver"):
        return self.kernel.memory.dma_alloc_coherent(size, owner)

    def dma_free_coherent(self, region):
        self.kernel.memory.dma_free_coherent(region)

    # -- interrupts ------------------------------------------------------------------

    def request_irq(self, irq, handler, name, dev_id=None):
        return self.kernel.irq.request_irq(irq, handler, name, dev_id)

    def free_irq(self, irq, dev_id=None):
        self.kernel.irq.free_irq(irq, dev_id)

    def rebind_irq(self, irq, handler):
        self.kernel.irq.rebind_irq(irq, handler)

    def disable_irq(self, irq):
        self.kernel.irq.disable_irq(irq)

    def enable_irq(self, irq):
        self.kernel.irq.enable_irq(irq)

    def irq_set_affinity(self, irq, cpu):
        return self.kernel.irq.set_affinity(irq, cpu)

    def num_online_cpus(self):
        return self.kernel.nr_cpus

    # -- locking ------------------------------------------------------------------------

    def spin_lock_init(self, name="lock"):
        return SpinLock(self.kernel, name)

    def spin_lock(self, lock):
        lock.lock()

    def spin_unlock(self, lock):
        lock.unlock()

    def spin_lock_irqsave(self, lock):
        lock.lock_irqsave()

    def spin_unlock_irqrestore(self, lock):
        lock.unlock_irqrestore()

    def mutex_init(self, name="mutex"):
        return Mutex(self.kernel, name)

    def mutex_lock(self, mutex):
        mutex.lock()

    def mutex_unlock(self, mutex):
        mutex.unlock()

    # -- timers and work ----------------------------------------------------------------

    def init_timer(self, function, data=None, name="timer"):
        return KernelTimer(self.kernel, function, data, name)

    def mod_timer(self, timer, expires_ms_from_now):
        timer.mod_timer_after(int(expires_ms_from_now * 1_000_000))

    def del_timer_sync(self, timer):
        return timer.del_timer()

    def init_work(self, function, data=None, name="work"):
        return WorkItem(self.kernel, function, data, name)

    def schedule_work(self, work):
        return self.kernel.workqueue.schedule_work(work)

    def cancel_work_sync(self, work):
        return self.kernel.workqueue.cancel_work(work)

    def flush_scheduled_work(self):
        self.kernel.workqueue.flush()

    # -- port and memory-mapped I/O --------------------------------------------------------

    def inb(self, port):
        return self.kernel.io.inb(port)

    def inw(self, port):
        return self.kernel.io.inw(port)

    def inl(self, port):
        return self.kernel.io.inl(port)

    def outb(self, value, port):
        self.kernel.io.outb(value, port)

    def outw(self, value, port):
        self.kernel.io.outw(value, port)

    def outl(self, value, port):
        self.kernel.io.outl(value, port)

    def readb(self, addr):
        return self.kernel.io.readb(addr)

    def readw(self, addr):
        return self.kernel.io.readw(addr)

    def readl(self, addr):
        return self.kernel.io.readl(addr)

    def writeb(self, value, addr):
        self.kernel.io.writeb(value, addr)

    def writew(self, value, addr):
        self.kernel.io.writew(value, addr)

    def writel(self, value, addr):
        self.kernel.io.writel(value, addr)

    # -- PCI ----------------------------------------------------------------------------------

    def pci_register_driver(self, driver):
        return self.kernel.pci.register_driver(driver)

    def pci_unregister_driver(self, driver):
        self.kernel.pci.unregister_driver(driver)

    def pci_enable_device(self, pdev):
        return self.kernel.pci.enable_device(pdev)

    def pci_disable_device(self, pdev):
        self.kernel.pci.disable_device(pdev)

    def pci_set_master(self, pdev):
        self.kernel.pci.set_master(pdev)

    def pci_request_regions(self, pdev, name):
        return self.kernel.pci.request_regions(pdev, name)

    def pci_release_regions(self, pdev):
        self.kernel.pci.release_regions(pdev)

    def pci_resource_start(self, pdev, bar):
        return pdev.resource_start(bar)

    def pci_resource_len(self, pdev, bar):
        return pdev.resource_len(bar)

    def pci_read_config_word(self, pdev, offset):
        return self.kernel.pci.read_config_word(pdev, offset)

    def pci_write_config_word(self, pdev, offset, value):
        self.kernel.pci.write_config_word(pdev, offset, value)

    def pci_read_config_dword(self, pdev, offset):
        return self.kernel.pci.read_config_dword(pdev, offset)

    def pci_write_config_dword(self, pdev, offset, value):
        self.kernel.pci.write_config_dword(pdev, offset, value)

    # -- network --------------------------------------------------------------------------------

    def alloc_etherdev(self, name="eth%d"):
        return NetDevice(self.kernel, name)

    def register_netdev(self, dev):
        return self.kernel.net.register_netdev(dev)

    def unregister_netdev(self, dev):
        self.kernel.net.unregister_netdev(dev)

    def netif_rx(self, dev, skb):
        return self.kernel.net.netif_rx(dev, skb)

    def netif_start_queue(self, dev):
        dev.netif_start_queue()

    def netif_stop_queue(self, dev):
        dev.netif_stop_queue()

    def netif_wake_queue(self, dev):
        dev.netif_wake_queue()

    def netif_queue_stopped(self, dev):
        return dev.netif_queue_stopped()

    def netif_carrier_on(self, dev):
        dev.netif_carrier_on()

    def netif_carrier_off(self, dev):
        dev.netif_carrier_off()

    def netif_carrier_ok(self, dev):
        return dev.netif_carrier_ok()

    def netif_running(self, dev):
        return dev.netif_running()

    def alloc_skb(self, size):
        return SkBuff(bytes(size))

    def skb_from_data(self, data):
        return SkBuff(data)

    # -- NAPI -------------------------------------------------------------------------------------

    def netif_napi_add(self, dev, poll, weight=64, irq=None, cpu=None):
        return self.kernel.net.napi.register(
            dev, poll, weight=weight,
            irq=dev.irq if irq is None else irq, cpu=cpu)

    def napi_enable(self, napi):
        self.kernel.net.napi.enable(napi)

    def napi_disable(self, napi):
        self.kernel.net.napi.disable(napi)

    def napi_schedule(self, napi):
        return self.kernel.net.napi.schedule(napi)

    def napi_complete(self, napi):
        self.kernel.net.napi.complete(napi)

    def netif_receive_skb(self, dev, skb):
        return self.kernel.net.netif_receive_skb(dev, skb)

    def napi_alloc_skb(self, size):
        """Zero-copy rx skb backed by the pooled DMA arena."""
        net = self.kernel.net
        if self.kernel.nr_cpus > 1:
            # SMP: the shard depends on which CPU's softirq is polling,
            # so dispatch per call (recycle-to-owner still holds via
            # the skb's back-pointer to its arena).
            self.napi_alloc_skb = net.alloc_rx_skb
            return net.alloc_rx_skb(size)
        pool = net.get_skb_pool()
        # Rebind to the pool's allocator so later calls on this instance
        # go straight to it -- this runs once per packet on the rx path.
        self.napi_alloc_skb = pool.alloc
        return pool.alloc(size)

    # -- sound ------------------------------------------------------------------------------------

    def snd_card_new(self, shortname):
        return SndCard(self.kernel, shortname)

    def snd_card_register(self, card):
        return self.kernel.sound.snd_card_register(card)

    def snd_card_free(self, card):
        return self.kernel.sound.snd_card_free(card)

    def snd_pcm_period_elapsed(self, substream):
        self.kernel.sound.snd_pcm_period_elapsed(substream)

    def snd_ctl_add(self, card, name):
        return self.kernel.sound.snd_ctl_add(card, name)

    def snd_ac97_codec_new(self, read_reg, write_reg):
        return Ac97Codec(read_reg, write_reg)

    # -- USB ----------------------------------------------------------------------------------------

    def usb_register_hcd(self, hcd):
        self.kernel.usb.register_hcd(hcd)

    def usb_unregister_hcd(self, hcd):
        self.kernel.usb.unregister_hcd(hcd)

    def usb_connect_device(self, device, hcd=None):
        return self.kernel.usb.connect_device(device, hcd=hcd)

    def usb_disconnect_device(self, device):
        self.kernel.usb.disconnect_device(device)

    def usb_giveback_urb(self, urb, status, actual_length):
        self.kernel.usb._giveback_urb(urb, status, actual_length)

    # -- input ----------------------------------------------------------------------------------------

    def input_allocate_device(self, name):
        from ..kernel.input import InputDev

        return InputDev(self.kernel, name)

    def input_register_device(self, dev):
        return self.kernel.input.register_device(dev)

    def input_unregister_device(self, dev):
        self.kernel.input.unregister_device(dev)
