"""kstat "top": render a kernel's counter snapshot as tables.

Usage::

    python -m repro.health.top SNAPSHOT.json          # one snapshot
    python -m repro.health.top --watch A.json B.json  # deltas A -> B
    python -m repro.health.top --demo                 # built-in demo rig

A snapshot file is the JSON form of ``kernel.kstat.snapshot()`` (a
flat name -> value dict); workload runs embed one in
``WorkloadResult.health_summary["kstat"]``, and ``--demo`` generates a
fresh one by running a short traffic burst through an e1000 rig.
"""

import argparse
import json
import sys

from .kstat import KstatRegistry


def _group(snapshot):
    """Split a flat snapshot into {top-level prefix: {rest: value}}."""
    groups = {}
    for name in sorted(snapshot):
        prefix, _, rest = name.partition(".")
        groups.setdefault(prefix, {})[rest or prefix] = snapshot[name]
    return groups


def _fmt(value):
    if isinstance(value, float):
        return "%.4f" % value
    return str(value)


def render(snapshot, title="kstat", out=None):
    """One snapshot as per-subsystem tables; returns the line count."""
    out = out if out is not None else sys.stdout
    lines = 0
    width = max((len(n) for n in snapshot), default=10)
    print("== %s (%d counters) ==" % (title, len(snapshot)), file=out)
    for prefix, entries in _group(snapshot).items():
        print("-- %s --" % prefix, file=out)
        for rest, value in entries.items():
            print("  %-*s %s" % (width, rest, _fmt(value)), file=out)
            lines += 1
    return lines


def render_cpus(snapshot, out=None):
    """The per-CPU "top" view: busy ns per CPU and per category."""
    out = out if out is not None else sys.stdout
    cpus = {}
    for name, value in snapshot.items():
        if not name.startswith("kernel.cpu"):
            continue
        rest = name[len("kernel."):]
        cpu, _, metric = rest.partition(".")
        if metric:
            cpus.setdefault(cpu, {})[metric] = value
    if not cpus:
        return
    categories = sorted({m for v in cpus.values() for m in v
                         if m != "busy_ns"})
    header = ["cpu", "busy_ns"] + categories
    print("-- per-cpu --", file=out)
    print("  " + "  ".join("%14s" % h for h in header), file=out)
    for cpu in sorted(cpus):
        row = [cpu, _fmt(cpus[cpu].get("busy_ns", 0))]
        row += [_fmt(cpus[cpu].get(c, 0)) for c in categories]
        print("  " + "  ".join("%14s" % c for c in row), file=out)


def render_watch(before, after, out=None):
    """Deltas between two snapshots (numeric keys only; new/gone noted)."""
    out = out if out is not None else sys.stdout
    delta = KstatRegistry.delta(before, after)
    gone = sorted(set(before) - set(after))
    new = sorted(set(after) - set(before))
    # The delta dict includes appeared/vanished keys (delta'd from
    # zero); report those only in their own sections below.
    changed = {name: value for name, value in delta.items()
               if value and name in before and name in after}
    print("== kstat deltas (%d changed) ==" % len(changed), file=out)
    width = max((len(n) for n in delta), default=10)
    for name in sorted(changed):
        value = changed[name]
        sign = "+" if value > 0 else ""
        print("  %-*s %s%s" % (width, name, sign, _fmt(value)), file=out)
    for name in new:
        print("  %-*s new: %s" % (width, name, _fmt(after[name])), file=out)
    for name in gone:
        print("  %-*s gone (was %s)" % (width, name, _fmt(before[name])),
              file=out)


def _demo_snapshot():
    """A live snapshot from a short e1000 receive burst."""
    from ..workloads import make_e1000_rig, netperf_recv

    rig = make_e1000_rig(decaf=False, health=True)
    rig.insmod()
    netperf_recv(rig, duration_s=0.05)
    return rig.kernel.kstat.snapshot()


def _load(path):
    with open(path) as fh:
        doc = json.load(fh)
    # Accept either a bare snapshot or a health_summary wrapper.
    if isinstance(doc, dict) and isinstance(doc.get("kstat"), dict):
        return doc["kstat"]
    return doc


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.health.top",
        description="Render kstat snapshots (kernel health counters).")
    parser.add_argument("snapshots", nargs="*",
                        help="snapshot JSON file(s)")
    parser.add_argument("--watch", action="store_true",
                        help="treat two snapshots as before/after; "
                             "print deltas")
    parser.add_argument("--demo", action="store_true",
                        help="run a short demo workload and show its "
                             "snapshot")
    args = parser.parse_args(argv)

    if args.demo:
        snapshot = _demo_snapshot()
        render(snapshot, title="demo e1000 recv")
        render_cpus(snapshot)
        return 0
    if args.watch:
        if len(args.snapshots) != 2:
            parser.error("--watch takes exactly two snapshot files")
        render_watch(_load(args.snapshots[0]), _load(args.snapshots[1]))
        return 0
    if not args.snapshots:
        parser.error("no snapshot files (or --demo) given")
    for path in args.snapshots:
        snapshot = _load(path)
        render(snapshot, title=path)
        render_cpus(snapshot)
    return 0


if __name__ == "__main__":
    sys.exit(main())
