"""kstat: a named, hierarchical counter/gauge registry.

Subsystems do not push values here on their hot paths.  They register a
*provider* -- a zero-argument callable returning a flat ``{name: value}``
dict -- and the registry pulls from it only when someone snapshots.  The
always-on cost of a kstat is therefore zero: the counters already exist
(IRQ delivery counts, NAPI poll totals, XPC crossings, ...); the
registry is just a uniform, dotted-name window onto them.

Naming scheme (see DESIGN.md "Health plane")::

    kernel.cpu0.busy_ns        per-CPU busy virtual time
    kernel.cpu0.irq_ns         ... split by accounting category
    irq.line10.count           per-line delivery count
    napi.polls                 NAPI core counters
    skb_pool.shared.hit_rate   per-shard pool efficiency
    xpc.crossings              summed across a driver's channels
    recovery.restarts          supervisor counters
    health.watchdog_fires      the health plane's own cold counters

Two providers registered under the same prefix merge; numeric name
collisions sum (two XPC instances on one kernel yield aggregate
crossings, like /proc/interrupts summing per-CPU columns).
"""


class KstatRegistry:
    """Provider-based pull registry plus a few explicit cold counters."""

    def __init__(self):
        # [(prefix, provider)] in registration order.
        self._providers = []
        # Explicit counters for cold events with no natural home
        # (watchdog fires, flight dumps).  Updated via inc(), never on
        # a hot path.
        self._counters = {}

    # -- registration -------------------------------------------------------

    def register(self, prefix, provider):
        """Register ``provider() -> {relative_name: value}`` under ``prefix``."""
        if not callable(provider):
            raise TypeError("kstat provider for %r is not callable" % prefix)
        self._providers.append((prefix, provider))
        return provider

    def unregister(self, prefix, provider=None):
        """Drop providers under ``prefix`` (or one specific provider).

        Matches by equality, not identity: providers are usually bound
        methods, and ``obj.method`` builds a fresh method object on
        every access, so an identity test would never match what
        ``register`` stored and the provider would leak on every
        driver remove.
        """
        self._providers = [
            (p, fn) for p, fn in self._providers
            if not (p == prefix and (provider is None or fn == provider))
        ]

    # -- explicit cold counters --------------------------------------------

    def inc(self, name, delta=1):
        self._counters[name] = self._counters.get(name, 0) + delta

    def counter(self, name):
        return self._counters.get(name, 0)

    # -- snapshots ----------------------------------------------------------

    def snapshot(self):
        """Flat ``{dotted.name: value}`` dict across every provider.

        Values are numbers (bools coerce to int).  A provider that
        raises poisons nothing else: its error is surfaced as a
        ``<prefix>.error`` string entry instead of a crash, because a
        health plane that dies while reporting a dying system is
        useless.
        """
        out = {}
        for prefix, provider in self._providers:
            try:
                values = provider()
            except Exception as exc:  # noqa: BLE001 -- see docstring
                out["%s.error" % prefix] = "%s: %s" % (type(exc).__name__, exc)
                continue
            for name, value in values.items():
                key = "%s.%s" % (prefix, name) if prefix else str(name)
                if isinstance(value, bool):
                    value = int(value)
                if key in out and isinstance(out[key], (int, float)) \
                        and isinstance(value, (int, float)):
                    out[key] += value
                else:
                    out[key] = value
        for name, value in self._counters.items():
            out[name] = out.get(name, 0) + value
        return out

    @staticmethod
    def delta(before, after):
        """Per-key numeric difference of two snapshots.

        Keys present on only one side are reported as-is (a counter
        that appeared mid-window delta'd from zero; one that vanished
        shows its negated old value) -- deltas never divide.
        """
        out = {}
        for key in set(before) | set(after):
            a = before.get(key, 0)
            b = after.get(key, 0)
            if not isinstance(a, (int, float)) or isinstance(a, bool):
                a = 0
            if not isinstance(b, (int, float)) or isinstance(b, bool):
                b = 0
            if b != a:
                out[key] = b - a
        return out
