"""Virtual-time sampling profiler.

A periodic tick event on the kernel's event queue takes one sample per
virtual period.  Because ``Kernel.consume`` fires due events from
*inside* whatever code is charging time, the tick genuinely lands mid
handler: this is real statistical sampling over virtual time, not a
post-hoc summary.

Each sample attributes the elapsed period to:

* the **frame stack** -- instrumented dispatch sites (IRQ handlers,
  NAPI polls, timer and work callbacks, XPC upcalls) push a label on
  entry and pop on exit, guarded exactly like tracepoints
  (``prof = kernel.profiler`` / ``if prof is not None``), so the
  disabled path costs one load + one identity test per site;
* the **accounting category** the current CPU last charged
  (``CpuAccounting.last_category``);
* the **per-CPU category deltas** since the previous tick -- exact, not
  sampled, taken from the accounting dicts.  On SMP kernels this is the
  authoritative attribution: CPU-targeted events charge deferred (no
  nested event firing), so stack samples there under-count and the
  category deltas carry the signal.

``flame()`` returns the aggregated ``"cpuN;ctx;frame;frame" -> samples``
dict (collapsed-stack format: feed it to any flamegraph tool);
``by_category()`` the exact per-CPU nanosecond split.
"""

# Local constant: repro.health stays import-free of repro.kernel (the
# kernel core imports repro.health.kstat; see watchdog.py).
NSEC_PER_MSEC = 1_000_000

DEFAULT_PERIOD_NS = NSEC_PER_MSEC  # 1 virtual ms per sample


class SamplingProfiler:
    def __init__(self, kernel, period_ns=DEFAULT_PERIOD_NS):
        self._kernel = kernel
        self.period_ns = period_ns
        self.samples = 0
        self.idle_samples = 0
        self.stacks = {}          # "cpuN;ctx;frames..." -> sample count
        self.category_ns = {}     # "cpuN.category" -> exact ns
        self._stack = []          # live frame stack (push/pop sites)
        self._last_busy = []      # per-CPU busy_ns at previous tick
        self._last_cats = []      # per-CPU {category: ns} at previous tick
        self.installed = False
        self._event = None

    # -- lifecycle ----------------------------------------------------------

    def install(self):
        if self._kernel.profiler is not None:
            raise RuntimeError("kernel already has a profiler installed")
        self._kernel.profiler = self
        self.installed = True
        self._last_busy = [cpu.acct._busy_ns for cpu in self._kernel.cpus]
        self._last_cats = [dict(cpu.acct._by_category)
                           for cpu in self._kernel.cpus]
        self._event = self._kernel.events.schedule_after(
            self.period_ns, self._tick, name="health-sampler")
        return self

    def uninstall(self):
        if not self.installed:
            return
        self._kernel.profiler = None
        self.installed = False
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._stack = []

    # -- frame stack (guarded call sites) ------------------------------------

    def push(self, label):
        self._stack.append(label)

    def pop(self):
        if self._stack:
            self._stack.pop()

    # -- the tick ------------------------------------------------------------

    def _tick(self):
        self._event = None
        if not self.installed:
            return
        kernel = self._kernel
        self.samples += 1
        cur = kernel.current_cpu

        # Exact per-CPU category deltas since the last tick.
        cat_ns = self.category_ns
        for vcpu in kernel.cpus:
            last = self._last_cats[vcpu.index]
            for category, ns in vcpu.acct._by_category.items():
                delta = ns - last.get(category, 0)
                if delta:
                    key = "cpu%d.%s" % (vcpu.index, category)
                    cat_ns[key] = cat_ns.get(key, 0) + delta
                    last[category] = ns

        # One stack sample for the CPU the tick landed on.
        busy_delta = cur.acct._busy_ns - self._last_busy[cur.index]
        self._last_busy = [cpu.acct._busy_ns for cpu in kernel.cpus]
        if busy_delta == 0 and not self._stack:
            self.idle_samples += 1
            key = "cpu%d;idle" % cur.index
        else:
            frames = ";".join(self._stack) if self._stack else \
                "(%s)" % (cur.acct.last_category or "kernel")
            key = "cpu%d;%s;%s" % (
                cur.index, cur.context.current_context(), frames)
        self.stacks[key] = self.stacks.get(key, 0) + 1

        if self.installed:
            self._event = kernel.events.schedule_after(
                self.period_ns, self._tick, name="health-sampler")

    # -- results -------------------------------------------------------------

    def flame(self, top=None):
        """Collapsed-stack samples, heaviest first."""
        ranked = sorted(self.stacks.items(), key=lambda kv: -kv[1])
        if top is not None:
            ranked = ranked[:top]
        return dict(ranked)

    def by_category(self):
        """Exact per-CPU nanoseconds charged per category while sampling."""
        return dict(self.category_ns)

    def summary(self):
        return {
            "period_ns": self.period_ns,
            "samples": self.samples,
            "idle_samples": self.idle_samples,
            "stacks": self.flame(top=50),
            "by_category": self.by_category(),
        }
