"""The health plane: kstat + flight recorder + watchdogs + profiler.

One object wires the always-on pieces together::

    health = HealthPlane(kernel, dump_dir="health-dumps").install()
    ... run workloads ...
    health.summary()           # kstat snapshot + watchdog/flight state
    health.start_profiler()    # opt-in sampling (heavier, still cheap)

Installed, it costs almost nothing: the kstat registry is pull-only,
the flight recorder is fed from cold paths (printk, faults, watchdog
fires) or mirrored from an already-installed tracer, and the watchdog
is one environmental event per ``period_ns`` of virtual time.
``benchmarks/test_health_overhead.py`` pins the contract: always-on
overhead < 1% of the hottest workload's wall time, sampler-enabled
< 5%.

Crash dumps: :meth:`dump` freezes ring + kstat + dmesg tail + per-CPU
state into a dict (and a JSON file when ``dump_dir`` is set).  It is
called on boundary faults, watchdog fires, and lockdep reports;
``python -m repro.health.postmortem`` renders one.
"""

import json
import os

from .flight import FlightRecorder, sanitize
from .profiler import SamplingProfiler
from .watchdog import Watchdogs

DMESG_TAIL_LINES = 100


class HealthPlane:
    def __init__(self, kernel, flight_capacity=None, dump_dir=None,
                 watchdogs=True, **watchdog_thresholds):
        self._kernel = kernel
        self.dump_dir = dump_dir
        self.flight = FlightRecorder(
            kernel, **({} if flight_capacity is None
                       else {"capacity": flight_capacity}))
        self.watchdog = (Watchdogs(kernel, self, **watchdog_thresholds)
                         if watchdogs else None)
        self.profiler = None
        self.dumps = []          # dicts, in fire order (bounded below)
        self.max_dumps = 32
        self.dump_paths = []
        self.channels = []       # XPC channels under hung-upcall watch
        self.supervisors = []    # DriverSupervisors fed by wedge fires
        self.on_watchdog = []    # callbacks: hook(WatchdogEvent)
        self.installed = False

    # -- lifecycle ----------------------------------------------------------

    def install(self):
        if self._kernel.health is not None:
            raise RuntimeError("kernel already has a health plane installed")
        self._kernel.health = self
        kernel = self._kernel
        kernel.kstat.register("health", self._kstat_provider)
        if self.watchdog is not None:
            self.watchdog.arm()
        # A tracer installed before the health plane mirrors from now on.
        tracer = kernel.tracer
        if tracer is not None:
            tracer.flight = self.flight
        self.installed = True
        return self

    def uninstall(self):
        if not self.installed:
            return
        kernel = self._kernel
        if self.watchdog is not None:
            self.watchdog.disarm()
        self.stop_profiler()
        tracer = kernel.tracer
        if tracer is not None and tracer.flight is self.flight:
            tracer.flight = None
        kernel.kstat.unregister("health", self._kstat_provider)
        kernel.health = None
        self.installed = False

    def _kstat_provider(self):
        out = {
            "flight.recorded": self.flight.recorded,
            "flight.buffered": len(self.flight.ring),
            "dumps": len(self.dumps),
        }
        if self.watchdog is not None:
            out["watchdog.checks"] = self.watchdog.checks
            for kind, count in self.watchdog.fires.items():
                out["watchdog.fires.%s" % kind] = count
        if self.profiler is not None:
            out["profiler.samples"] = self.profiler.samples
        return out

    # -- registrations ------------------------------------------------------

    def watch_channel(self, channel):
        """Put an XPC channel under the hung-upcall watchdog."""
        if channel not in self.channels:
            self.channels.append(channel)

    def unwatch_channel(self, channel):
        """Drop a closed channel from the watch list (hotplug churn)."""
        if channel in self.channels:
            self.channels.remove(channel)

    def register_supervisor(self, supervisor):
        if supervisor not in self.supervisors:
            self.supervisors.append(supervisor)

    def unregister_supervisor(self, supervisor):
        if supervisor in self.supervisors:
            self.supervisors.remove(supervisor)

    # -- profiler -----------------------------------------------------------

    def start_profiler(self, period_ns=None):
        if self.profiler is not None:
            return self.profiler
        kwargs = {} if period_ns is None else {"period_ns": period_ns}
        self.profiler = SamplingProfiler(self._kernel, **kwargs).install()
        return self.profiler

    def stop_profiler(self):
        if self.profiler is not None:
            self.profiler.uninstall()
            profiler, self.profiler = self.profiler, None
            return profiler
        return None

    # -- crash-grade hooks --------------------------------------------------

    def on_boundary_fault(self, driver, callsite, exc):
        """XPC containment marked a driver FAILED: record + dump."""
        self.flight.note("xpc.fault", {
            "driver": driver, "callsite": callsite,
            "exc": type(exc).__name__, "msg": str(exc),
        })
        self.dump("boundary-fault", {
            "driver": driver, "callsite": callsite,
            "exc": type(exc).__name__,
        })

    def on_lockdep_report(self, kind, message):
        self.flight.note("lockdep.report", {"kind": kind, "msg": message})
        self.dump("lockdep:%s" % kind, {"msg": message})

    # -- crash dumps ---------------------------------------------------------

    def dump(self, reason, detail=None):
        """Freeze the flight ring + kstat + dmesg tail + per-CPU state."""
        kernel = self._kernel
        report = {
            "reason": reason,
            "ts_ns": kernel.clock.now_ns,
            "detail": sanitize(detail or {}),
            "ring": [
                {"ts_ns": ts, "cpu": cpu, "name": name,
                 "args": sanitize(args)}
                for ts, cpu, name, args in self.flight.ring
            ],
            "kstat": sanitize(kernel.kstat.snapshot()),
            "dmesg": [
                {"ts_ns": ts, "level": level, "msg": msg}
                for ts, level, msg in kernel.dmesg()[-DMESG_TAIL_LINES:]
            ],
            "cpus": [
                {
                    "index": vcpu.index,
                    "context": vcpu.context.current_context(),
                    "busy_ns": vcpu.acct._busy_ns,
                    "by_category": dict(vcpu.acct._by_category),
                    "busy_until_ns": vcpu.busy_until_ns,
                }
                for vcpu in kernel.cpus
            ],
            "watchdog": (self.watchdog.snapshot()
                         if self.watchdog is not None else None),
            "prior_dumps": len(self.dumps),
        }
        if len(self.dumps) < self.max_dumps:
            self.dumps.append(report)
        kernel.kstat.inc("health.dumps_written")
        tracer = kernel.tracer
        if tracer is not None:
            tracer.instant("health.dump", {"reason": reason})
        path = self._write_dump(report)
        if path is not None:
            report["path"] = path
        return report

    def _write_dump(self, report):
        if self.dump_dir is None:
            return None
        os.makedirs(self.dump_dir, exist_ok=True)
        slug = "".join(c if c.isalnum() or c in "-_" else "-"
                       for c in report["reason"])
        path = os.path.join(
            self.dump_dir,
            "health-dump-%012d-%s.json" % (report["ts_ns"], slug))
        with open(path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        self.dump_paths.append(path)
        return path

    # -- summaries ----------------------------------------------------------

    def summary(self):
        """What a WorkloadResult embeds as ``health_summary``."""
        out = {
            "kstat": self._kernel.kstat.snapshot(),
            "flight": self.flight.snapshot(),
            "dumps": len(self.dumps),
            "watchdog_fires": (dict(self.watchdog.fires)
                               if self.watchdog is not None else {}),
        }
        if self.profiler is not None:
            out["profile"] = self.profiler.summary()
        return out
