"""repro.health: the always-on kernel health plane.

Four pieces layered over virtual time (see DESIGN.md "Health plane"):

* :class:`KstatRegistry` -- named hierarchical counters/gauges, pulled
  lazily from subsystem providers (``kernel.kstat`` on every kernel).
* :class:`FlightRecorder` -- bounded ring of recent events, always
  collecting, dumped as a JSON crash report on faults/watchdog fires.
* :class:`Watchdogs` -- soft-lockup and hung-task/wedged-queue
  detection; feeds the recovery supervisor.
* :class:`SamplingProfiler` -- a timer-driven sampler producing
  flame-style stacks and exact per-CPU category attribution.

CLIs: ``python -m repro.health.top`` (kstat "top" view, ``--watch``
deltas) and ``python -m repro.health.postmortem`` (summarize a dump).
"""

from .flight import FlightRecorder
from .kstat import KstatRegistry
from .plane import HealthPlane
from .profiler import SamplingProfiler
from .watchdog import Watchdogs

__all__ = [
    "FlightRecorder",
    "HealthPlane",
    "KstatRegistry",
    "SamplingProfiler",
    "Watchdogs",
]
