"""Flight recorder: the last N things that happened, always.

A bounded ring of compact ``(ts_ns, cpu, name, args)`` records that is
*always* collecting while the health plane is installed -- independent
of whether a ktrace :class:`~repro.trace.Tracer` is attached, and
independent of any tracer's enable-filter.  It is fed from three
directions:

1. ``Kernel.printk`` mirrors every log line here (printk is cold).
2. Cold control-plane sites call :meth:`note` directly: watchdog fires,
   fault injection, XPC boundary containment, recovery steps, lockdep
   reports.
3. When a ktrace tracer *is* installed, it mirrors every emitted
   tracepoint into this ring before applying its enable-filter
   (``Tracer.instant`` / ``Tracer.span``), so a traced run's ring holds
   the full recent event stream.

On a crash-grade condition (boundary fault, watchdog fire, lockdep
report) :meth:`HealthPlane.dump` freezes the ring into a JSON crash
report alongside a kstat snapshot, the dmesg tail, and per-CPU state.
``python -m repro.health.postmortem`` summarizes one.
"""

from collections import deque

DEFAULT_CAPACITY = 8192


class FlightRecorder:
    def __init__(self, kernel, capacity=DEFAULT_CAPACITY):
        self._kernel = kernel
        self.capacity = capacity
        # The ring is a maxlen deque: appends at capacity evict the
        # oldest record in O(1) -- the "lock-free ring" of the real
        # kernel's per-CPU trace buffers, minus the CPUs (the simulator
        # is single-threaded; determinism stands in for atomicity).
        self.ring = deque(maxlen=capacity)
        self.recorded = 0

    def note(self, name, args=None):
        """Record one event.  Cold paths only -- hot paths either pay
        nothing (no tracer) or are mirrored via the tracer."""
        kernel = self._kernel
        self.recorded += 1
        self.ring.append((kernel.clock.now_ns, kernel.current_cpu.index,
                          name, args if args is not None else {}))

    def mirror(self, ts_ns, cpu, name, args):
        """Tracer-side mirroring entry point (pre-built fields)."""
        self.recorded += 1
        self.ring.append((ts_ns, cpu, name, args))

    def tail(self, n=None):
        """Newest-last list of records (the whole ring by default)."""
        if n is None or n >= len(self.ring):
            return list(self.ring)
        return list(self.ring)[-n:]

    def snapshot(self):
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "buffered": len(self.ring),
        }


def sanitize(value, depth=0):
    """Make a record JSON-serializable without trusting its contents.

    Ring args may hold arbitrary objects (exceptions, devices).  Dump
    files must always be writable, so anything non-primitive collapses
    to ``repr`` and nesting is bounded.
    """
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if depth >= 4:
        return repr(value)
    if isinstance(value, dict):
        return {str(k): sanitize(v, depth + 1) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(v, depth + 1) for v in value]
    return repr(value)
