"""Summarize a flight-recorder crash dump.

Usage::

    python -m repro.health.postmortem DUMP.json [--ring N] [--dmesg N]

A dump is what :meth:`repro.health.HealthPlane.dump` wrote: reason,
flight ring, kstat snapshot, dmesg tail, per-CPU state, watchdog
state.  The summary leads with what fired and when, then the evidence
closest to the event.
"""

import argparse
import json
import sys


def _ms(ns):
    return "%.3f ms" % (ns / 1e6)


def summarize(report, ring_tail=20, dmesg_tail=10, out=None):
    """Human summary of one dump dict; returns the parsed report."""
    out = out if out is not None else sys.stdout
    print("== health dump: %s ==" % report.get("reason", "?"), file=out)
    print("at %s (virtual)" % _ms(report.get("ts_ns", 0)), file=out)
    detail = report.get("detail") or {}
    for key in sorted(detail):
        print("  %s = %s" % (key, detail[key]), file=out)

    watchdog = report.get("watchdog") or {}
    fires = watchdog.get("fires") or {}
    if any(fires.values()):
        print("-- watchdog --", file=out)
        print("  checks=%s fires=%s" % (watchdog.get("checks", 0),
                                        dict(fires)), file=out)
        for event in watchdog.get("events", []):
            print("  [%s] %s on %s: %s" % (
                _ms(event.get("ts_ns", 0)), event.get("kind"),
                event.get("target"), event.get("detail")), file=out)

    cpus = report.get("cpus") or []
    if cpus:
        print("-- cpus --", file=out)
        for cpu in cpus:
            cats = ", ".join(
                "%s=%s" % (c, _ms(n))
                for c, n in sorted((cpu.get("by_category") or {}).items()))
            print("  cpu%s: %s busy in %s, busy %s" % (
                cpu.get("index"), cpu.get("context"),
                _ms(cpu.get("busy_ns", 0)), cats or "(nothing)"), file=out)

    dmesg = report.get("dmesg") or []
    if dmesg:
        print("-- dmesg (last %d of %d) --"
              % (min(dmesg_tail, len(dmesg)), len(dmesg)), file=out)
        for entry in dmesg[-dmesg_tail:]:
            print("  [%s] %s: %s" % (_ms(entry.get("ts_ns", 0)),
                                     entry.get("level"),
                                     entry.get("msg")), file=out)

    ring = report.get("ring") or []
    if ring:
        print("-- flight ring (last %d of %d) --"
              % (min(ring_tail, len(ring)), len(ring)), file=out)
        for entry in ring[-ring_tail:]:
            print("  [%s] cpu%s %s %s" % (
                _ms(entry.get("ts_ns", 0)), entry.get("cpu"),
                entry.get("name"), entry.get("args") or ""), file=out)

    kstat = report.get("kstat") or {}
    highlights = sorted(
        name for name in kstat
        if name.startswith(("health.", "recovery.", "irq.delivered",
                            "xpc.boundary_faults")))
    if highlights:
        print("-- kstat highlights --", file=out)
        for name in highlights:
            print("  %s = %s" % (name, kstat[name]), file=out)
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.health.postmortem",
        description="Summarize a health-plane crash dump.")
    parser.add_argument("dumps", nargs="+", help="dump JSON file(s)")
    parser.add_argument("--ring", type=int, default=20,
                        help="flight-ring tail length (default 20)")
    parser.add_argument("--dmesg", type=int, default=10,
                        help="dmesg tail length (default 10)")
    args = parser.parse_args(argv)
    for path in args.dumps:
        with open(path) as fh:
            report = json.load(fh)
        summarize(report, ring_tail=args.ring, dmesg_tail=args.dmesg)
    return 0


if __name__ == "__main__":
    sys.exit(main())
