"""Stall watchdogs: soft-lockup and hung-task detection in virtual time.

Both detectors run from one periodic checker event on the kernel's
event queue.  The checker is *environmental* (plain event, no
``needs_sched``), so it fires even while the CPU is stuck inside an
interrupt handler -- nested ``run_until`` dispatches it from whatever
``consume`` the stuck code is spinning in.  That is what makes a
soft lockup observable at all in a discrete-event kernel.

Detectors (thresholds are virtual time; see DESIGN.md "Health plane"):

* **soft lockup** -- one event callback has charged more than
  ``soft_lockup_ns`` of busy CPU time without returning.  The kernel
  tracks the busy counter at entry of the outermost in-flight event
  dispatch; if the checker (necessarily nested inside that dispatch)
  sees the delta exceed the threshold, some handler is hogging the
  CPU -- the analog of 20 s in kernel mode with the softirq watchdog
  kthread starved.

* **hung task / wedged queue** -- a netdev whose TX queue has been
  stopped for more than ``hung_task_ns`` (the driver lost its TX
  completions: classic wedged-device signature), or an XPC channel
  whose deferred-upcall queue has been pending longer than
  ``xpc_pending_ns`` without a flush.

A fire emits a ``health.watchdog`` tracepoint (if traced), a printk
warning, a flight-recorder note + crash dump, and -- for wedged-queue
fires -- feeds every registered :class:`~repro.recovery.DriverSupervisor`
via ``note_wedge`` so a stalled decaf driver is restarted instead of
staying silently dead.  Each (kind, target) stall fires once per
episode; the latch clears when the condition resolves.
"""

# Local constant: this module must not import repro.kernel (the kernel
# core imports repro.health.kstat; keeping health leaf-free of kernel
# imports breaks the cycle).
NSEC_PER_MSEC = 1_000_000

DEFAULT_PERIOD_NS = 10 * NSEC_PER_MSEC
DEFAULT_SOFT_LOCKUP_NS = 100 * NSEC_PER_MSEC
DEFAULT_HUNG_TASK_NS = 100 * NSEC_PER_MSEC
DEFAULT_XPC_PENDING_NS = 100 * NSEC_PER_MSEC


class WatchdogEvent:
    """One watchdog fire (kept on ``Watchdogs.events``)."""

    __slots__ = ("kind", "target", "ts_ns", "detail")

    def __init__(self, kind, target, ts_ns, detail):
        self.kind = kind
        self.target = target
        self.ts_ns = ts_ns
        self.detail = detail

    def as_dict(self):
        return {"kind": self.kind, "target": self.target,
                "ts_ns": self.ts_ns, "detail": dict(self.detail)}


class Watchdogs:
    def __init__(self, kernel, health,
                 period_ns=DEFAULT_PERIOD_NS,
                 soft_lockup_ns=DEFAULT_SOFT_LOCKUP_NS,
                 hung_task_ns=DEFAULT_HUNG_TASK_NS,
                 xpc_pending_ns=DEFAULT_XPC_PENDING_NS):
        self._kernel = kernel
        self._health = health
        self.period_ns = period_ns
        self.soft_lockup_ns = soft_lockup_ns
        self.hung_task_ns = hung_task_ns
        self.xpc_pending_ns = xpc_pending_ns
        self.checks = 0
        self.fires = {"soft_lockup": 0, "hung_task": 0, "xpc_pending": 0}
        self.events = []
        self.armed = False
        self._event = None
        # (kind, target) pairs currently in a fired episode.
        self._latched = set()

    # -- lifecycle ----------------------------------------------------------

    def arm(self):
        if self.armed:
            return self
        self.armed = True
        self._schedule()
        return self

    def disarm(self):
        self.armed = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _schedule(self):
        self._event = self._kernel.events.schedule_after(
            self.period_ns, self._check, name="health-watchdog")

    # -- the periodic check -------------------------------------------------

    def _check(self):
        self._event = None
        if not self.armed:
            return
        self.checks += 1
        kernel = self._kernel
        now = kernel.clock.now_ns

        # Soft lockup: the checker runs nested inside the outermost
        # in-flight dispatch (depth > 1 counts the checker itself), and
        # that dispatch has been burning CPU since it entered.  Only
        # *atomic* context counts -- hardirq/softirq, or with spinlocks
        # held: preemptible process context can legitimately run long
        # (a driver restart pays a JVM startup in one work item), just
        # as Linux's watchdog only trips when its kthread is starved.
        cleared = True
        if kernel._dispatch_depth > 1:
            context = kernel.current_cpu.context
            atomic = (context.in_irq() or context.in_softirq()
                      or bool(context._spinlocks_held))
            hog_ns = kernel.cpu._busy_ns - kernel._dispatch_entry_busy_ns
            if atomic and hog_ns >= self.soft_lockup_ns:
                cpu = kernel.current_cpu
                cleared = False
                self._fire("soft_lockup", "cpu%d" % cpu.index, {
                    "busy_ns": hog_ns,
                    "context": context.current_context(),
                    "softirq_dispatches": kernel.softirq_dispatches,
                })
        if cleared:
            for vcpu in kernel.cpus:
                self._latched.discard(("soft_lockup", "cpu%d" % vcpu.index))

        # Hung TX queues: stopped-since timestamps are written by
        # netif_stop_queue on the running->stopped transition only.  A
        # device that is administratively down (ifdown clears IFF_UP
        # before the driver's stop op parks the queue) is not hung.
        net = kernel.net
        if net is not None:
            for dev in net._devices:
                since = dev._stopped_since_ns
                if (since is not None and dev._queue_stopped
                        and dev.netif_running()):
                    stalled_ns = now - since
                    if stalled_ns >= self.hung_task_ns:
                        self._fire("hung_task", dev.name, {
                            "queue": "tx",
                            "stalled_ns": stalled_ns,
                            "tx_packets": dev.stats.tx_packets,
                        }, wedge=True)
                        continue
                self._latched.discard(("hung_task", dev.name))

        # XPC deferred-upcall queues pending too long without a flush.
        for channel in self._health.channels:
            since = channel._deferred_since_ns
            if since is not None and channel._deferred:
                pending_ns = now - since
                if pending_ns >= self.xpc_pending_ns:
                    self._fire("xpc_pending", channel.name, {
                        "pending": len(channel._deferred),
                        "pending_ns": pending_ns,
                    }, wedge=True)
                    continue
            self._latched.discard(("xpc_pending", channel.name))

        if self.armed:
            self._schedule()

    # -- firing -------------------------------------------------------------

    def _fire(self, kind, target, detail, wedge=False):
        key = (kind, target)
        if key in self._latched:
            return
        self._latched.add(key)
        self.fires[kind] += 1
        kernel = self._kernel
        event = WatchdogEvent(kind, target, kernel.clock.now_ns, detail)
        self.events.append(event)
        kernel.kstat.inc("health.watchdog_fires")
        kernel.kstat.inc("health.watchdog_fires.%s" % kind)
        kernel.printk(
            "health: watchdog %s on %s (%s)" % (
                kind, target,
                ", ".join("%s=%s" % kv for kv in sorted(detail.items()))),
            level="warn",
        )
        health = self._health
        tracer = kernel.tracer
        if tracer is not None:
            # The tracer mirrors every instant into the flight ring, so
            # noting here too would double-record (printk discipline).
            tracer.instant("health.watchdog", {
                "kind": kind, "target": target, **detail})
        else:
            health.flight.note("health.watchdog",
                               {"kind": kind, "target": target, **detail})
        health.dump("watchdog:%s" % kind,
                    {"target": target, **detail})
        for hook in list(health.on_watchdog):
            hook(event)
        if wedge:
            reason = "%s watchdog: %s stalled" % (kind, target)
            for supervisor in list(health.supervisors):
                supervisor.note_wedge(reason)

    def snapshot(self):
        return {
            "armed": self.armed,
            "checks": self.checks,
            "fires": dict(self.fires),
            "period_ns": self.period_ns,
            "events": [ev.as_dict() for ev in self.events],
        }
