"""Object trackers: identity of shared objects across domains.

Two trackers cooperate (paper section 3.1.2):

* The **kernel-side tracker** maps C addresses to kernel objects -- a
  plain address-keyed table, consulted with a procedure call during
  unmarshaling in the kernel.

* The **user-level tracker** ("written in Java") maps the pair
  ``(c_addr, type_id)`` to the user object.  The type identifier exists
  because one C pointer can correspond to several Java objects: a struct
  embedded first-member has the same address as its container.  The
  paper uses the address of the C XDR marshaling routine as the type id;
  we use the registered codec identity, which is the same thing one
  level up.

The paper leaves automatic release as future work ("weak references and
finalizers would allow unreferenced objects to be removed
automatically"); :meth:`UserObjectTracker.associate` supports exactly
that via ``weak=True``, implemented here as the extension the authors
sketch.
"""

import weakref


class TrackerError(Exception):
    pass


class KernelObjectTracker:
    """Kernel-side: C address -> kernel object."""

    def __init__(self):
        self._by_addr = {}
        self.lookups = 0
        self.hits = 0

    def register(self, obj):
        self._by_addr[obj.c_addr] = obj

    def lookup(self, c_addr):
        self.lookups += 1
        obj = self._by_addr.get(c_addr)
        if obj is not None:
            self.hits += 1
        return obj

    def remove(self, c_addr):
        self._by_addr.pop(c_addr, None)

    def __len__(self):
        return len(self._by_addr)


class UserObjectTracker:
    """User-level: (c_addr, type_id) -> Java object, and the reverse.

    Java objects have no stable address, so the reverse map is keyed by
    object identity (``id``) -- the Java implementation uses object
    references the same way.
    """

    def __init__(self):
        self._j_by_key = {}        # (c_addr, type_id) -> obj or weakref
        self._c_by_objid = {}      # id(obj) -> (c_addr, type_id)
        self._strong_refs = {}     # id(obj) -> obj (non-weak entries)
        self._epoch = 0            # bumped by clear(); disarms finalizers
        self.lookups = 0
        self.hits = 0
        self.auto_released = 0
        self.release_hook = None   # called with (c_addr, type_id) on GC

    def associate(self, c_addr, type_id, obj, weak=False):
        key = (c_addr, type_id)
        objid = id(obj)
        if weak:
            ref = weakref.ref(obj, self._make_finalizer(key, objid))
            self._j_by_key[key] = ref
        else:
            self._j_by_key[key] = obj
            self._strong_refs[objid] = obj
        self._c_by_objid[objid] = key

    def _make_finalizer(self, key, objid):
        epoch = self._epoch
        def finalize(_ref):
            # Runs when the Java GC collects the object: drop the
            # association and let the runtime free the kernel twin.
            # A finalizer armed before clear() must not fire against a
            # later driver instance: the same simulated address can
            # alias a brand-new object after a restart.
            if epoch != self._epoch:
                return
            self._j_by_key.pop(key, None)
            self._c_by_objid.pop(objid, None)
            self.auto_released += 1
            if self.release_hook is not None:
                self.release_hook(key[0], key[1])
        return finalize

    def clear(self):
        """Drop every association (driver unload or restart).

        Bumps the epoch so finalizers created for the old associations
        become no-ops: without this, the GC of an old driver instance's
        objects would evict entries a restarted driver re-created at
        the same ``(c_addr, type_id)`` keys and free its live twins.
        """
        self._epoch += 1
        self._j_by_key.clear()
        self._c_by_objid.clear()
        self._strong_refs.clear()

    def xlate_c_to_j(self, c_addr, type_id):
        """Find the Java object for a C pointer of a given type."""
        self.lookups += 1
        entry = self._j_by_key.get((c_addr, type_id))
        if entry is None:
            return None
        obj = entry() if isinstance(entry, weakref.ref) else entry
        if obj is not None:
            self.hits += 1
        return obj

    def xlate_j_to_c(self, obj):
        """Find the C pointer (and type) for a Java object, or None."""
        self.lookups += 1
        key = self._c_by_objid.get(id(obj))
        if key is not None:
            self.hits += 1
        return key

    def disassociate(self, obj):
        key = self._c_by_objid.pop(id(obj), None)
        if key is not None:
            self._j_by_key.pop(key, None)
        self._strong_refs.pop(id(obj), None)
        return key

    def __len__(self):
        return len(self._j_by_key)
