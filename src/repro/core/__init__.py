"""The Decaf Drivers core: domains, XPC, marshaling, object tracking.

This package implements the paper's primary contribution:

* :mod:`repro.core.domains` -- the three execution domains (kernel,
  user-level driver library, user-level decaf driver) and the heap
  discipline between them.
* :mod:`repro.core.cstruct` -- C-layout struct definitions with the
  marshaling annotations DriverSlicer consumes.
* :mod:`repro.core.marshal` -- XDR-style selective-field marshaling with
  recursive/cyclic structure support.
* :mod:`repro.core.objtracker` -- object identity across domains.
* :mod:`repro.core.xpc` -- extension procedure call: control transfer,
  crossing counters, cost accounting.
* :mod:`repro.core.combolock` -- spinlock/semaphore hybrid locks.
* :mod:`repro.core.runtime` -- the nuclear runtime (kernel side) and
  decaf runtime (user side) shared by all decaf drivers.
"""

from .cstruct import (
    Array,
    CStruct,
    Exp,
    I8,
    I16,
    I32,
    I64,
    Null,
    Opaque,
    Ptr,
    Str,
    Struct,
    StructRegistry,
    U8,
    U16,
    U32,
    U64,
)
from .domains import DECAF, DRIVER_LIB, KERNEL, DomainManager
from .marshal import (
    FieldAccess,
    MarshalCodec,
    MarshalError,
    MarshalPlan,
    TO_KERNEL,
    TO_USER,
    TypeIds,
    TypeRegistry,
)
from .objtracker import KernelObjectTracker, UserObjectTracker
from .xpc import Xpc, XpcChannel
from .combolock import ComboLock
from .runtime import DecafRuntime, NuclearRuntime

__all__ = [
    "CStruct",
    "StructRegistry",
    "U8",
    "U16",
    "U32",
    "U64",
    "I8",
    "I16",
    "I32",
    "I64",
    "Str",
    "Array",
    "Ptr",
    "Struct",
    "Exp",
    "Opaque",
    "Null",
    "KERNEL",
    "DRIVER_LIB",
    "DECAF",
    "DomainManager",
    "FieldAccess",
    "MarshalCodec",
    "MarshalError",
    "MarshalPlan",
    "TO_KERNEL",
    "TO_USER",
    "TypeIds",
    "TypeRegistry",
    "KernelObjectTracker",
    "UserObjectTracker",
    "Xpc",
    "XpcChannel",
    "ComboLock",
    "NuclearRuntime",
    "DecafRuntime",
]
