"""Decaf runtime and nuclear runtime (section 3).

Two runtime components are shared by every decaf driver:

* The **nuclear runtime** is a kernel module linked into each driver
  nucleus.  It owns the upcall discipline: before control transfers to
  user level it disables the device's interrupt line (so the driver
  cannot interrupt itself while its user half runs) and re-enables it on
  return.  It also converts high-priority kernel timers into deferred
  work items so timer-driven driver logic (E1000's watchdog) can run in
  the decaf driver.

* The **decaf runtime** is the user-level helper library: the escape
  hatches a managed language lacks -- ``sizeof``, programmed I/O
  (``inb``/``outb``/``readl``/``writel``), delays -- plus shared-object
  constructors that allocate the kernel twin eagerly, and (as the
  paper's sketched extension) finalizer-based automatic release of
  shared objects through the weak-reference object tracker.

None of the helpers here are driver-specific; drivers share them, as
the paper found for E1000.
"""

from ..kernel.timers import KernelTimer, WorkItem
from .domains import DECAF, KERNEL


class NuclearRuntime:
    """Kernel-side runtime linked to a driver nucleus."""

    def __init__(self, kernel, domains, channel, irq_line=None):
        self.kernel = kernel
        self.domains = domains
        self.channel = channel
        self.irq_line = irq_line
        self.deferred_timers = []
        self.upcalls_deferred = 0

    # -- upcall discipline ----------------------------------------------------

    def upcall(self, func, args=(), extra=None):
        """Transfer control to the user-level driver.

        Disables the device interrupt while user code runs (the driver
        must not interrupt itself), re-enabling afterwards.
        """
        irq = self.irq_line
        if irq is not None:
            self.kernel.irq.disable_irq(irq)
        try:
            return self.channel.upcall(func, args, extra)
        finally:
            if irq is not None and self.kernel.irq.irq_disabled(irq):
                # Skip the re-enable when the upcall tore the driver
                # down: free_irq resets the line's mask depth, so our
                # disable no longer has a balancing slot.
                self.kernel.irq.enable_irq(irq)

    # -- deferred one-way notifications ----------------------------------------

    def notify(self, func, args=(), extra=None):
        """Queue a fire-and-forget upcall (no return value, no sleep).

        Legal from any context -- interrupt handlers, timer callbacks,
        under spinlocks -- because nothing crosses until the channel's
        next sync point.  Repeats for the same target coalesce.
        """
        self.channel.defer(func, args, extra)

    def flush_notifications(self):
        """Drain queued notifications in one batched crossing.

        Must be called from process context; the device interrupt is
        masked while the user half runs, as for a normal upcall.
        """
        if not self.channel.pending_deferred():
            return 0
        irq = self.irq_line
        if irq is not None:
            self.kernel.irq.disable_irq(irq)
        try:
            return self.channel.flush_deferred()
        finally:
            if irq is not None and self.kernel.irq.irq_disabled(irq):
                # As in upcall(): a teardown during the flush freed the
                # line and reset its mask depth.
                self.kernel.irq.enable_irq(irq)

    # -- timer deferral ------------------------------------------------------------

    def defer_timer(self, function, data=None, name="deferred-timer"):
        """Create a timer whose handler runs as deferred work.

        Kernel timers fire at high priority and may not call up to user
        level; the returned timer instead enqueues a work item, which
        runs in process context where upcalls are legal.
        """
        work = WorkItem(self.kernel, function, data, name=name + "-work")

        def fire(_data):
            self.upcalls_deferred += 1
            self.kernel.workqueue.schedule_work(work)

        timer = KernelTimer(self.kernel, fire, data, name=name)
        self.deferred_timers.append(timer)
        return timer


class DecafRuntime:
    """User-level helpers shared by all decaf drivers."""

    def __init__(self, kernel, domains, channel):
        self.kernel = kernel
        self.domains = domains
        self.channel = channel
        self._started = False
        self.shared_objects_created = 0
        channel.user_tracker.release_hook = self._release_kernel_twin
        self._kernel_twins = {}

    def start(self):
        """Start the managed runtime (JVM); charged once per driver."""
        if self._started:
            return
        self._started = True
        self.kernel.consume(
            self.kernel.costs.jvm_startup_ns, busy=True, category="jvm"
        )

    # -- escape hatches: functionality Java cannot express (section 5.3) -------

    def sizeof(self, struct_cls):
        return struct_cls.sizeof()

    def inb(self, port):
        return self.channel.direct_call(self.kernel.io.inb, port)

    def inw(self, port):
        return self.channel.direct_call(self.kernel.io.inw, port)

    def inl(self, port):
        return self.channel.direct_call(self.kernel.io.inl, port)

    def outb(self, value, port):
        self.channel.direct_call(self.kernel.io.outb, value, port)

    def outw(self, value, port):
        self.channel.direct_call(self.kernel.io.outw, value, port)

    def outl(self, value, port):
        self.channel.direct_call(self.kernel.io.outl, value, port)

    def readl(self, addr):
        return self.channel.direct_call(self.kernel.io.readl, addr)

    def writel(self, value, addr):
        self.channel.direct_call(self.kernel.io.writel, value, addr)

    def msleep(self, msecs):
        """``DriverWrappers.Java_msleep`` from Fig. 5."""
        self.channel.direct_call(self.kernel.msleep, msecs)

    def udelay(self, usecs):
        self.channel.direct_call(self.kernel.udelay, usecs)

    # -- shared-object constructors (section 5.1, garbage collection) ------------

    def new_shared(self, struct_cls, weak=True):
        """Allocate a Java object together with its kernel twin.

        The custom constructor of the paper: kernel memory is allocated
        at the same time and the pair is entered into the object
        tracker.  With ``weak=True`` the association is dropped and the
        kernel twin freed automatically when the Java GC collects the
        object -- the finalizer extension.
        """
        java_obj = struct_cls()
        kernel_obj = struct_cls()
        type_id = self.channel.type_ids.id_of(struct_cls)
        self.channel.kernel_tracker.register(kernel_obj)
        self.channel.user_tracker.associate(
            kernel_obj.c_addr, type_id, java_obj, weak=weak
        )
        alloc = self.kernel.memory.kmalloc(
            struct_cls.sizeof() or 8, owner="decaf-shared"
        )
        self._kernel_twins[(kernel_obj.c_addr, type_id)] = (kernel_obj, alloc)
        self.shared_objects_created += 1
        return java_obj

    def free_shared(self, java_obj):
        """Explicit release (what decaf drivers must do without weak refs)."""
        key = self.channel.user_tracker.disassociate(java_obj)
        if key is not None:
            self._release_kernel_twin(*key)

    def _release_kernel_twin(self, c_addr, type_id):
        entry = self._kernel_twins.pop((c_addr, type_id), None)
        if entry is not None:
            kernel_obj, alloc = entry
            self.channel.kernel_tracker.remove(kernel_obj.c_addr)
            if alloc is not None:
                self.kernel.memory.kfree(alloc)
