"""Combolocks: the cross-domain synchronization primitive (section 3.1.3).

A combolock protects data shared between the driver nucleus and the
user-level driver.  Its mode depends on who holds it:

* acquired and released only by kernel code, it behaves as a spinlock
  (cheap, non-sleeping, makes the context atomic);
* acquired from user mode, it becomes a semaphore, and kernel threads
  that contend must *sleep* on it instead of spinning.

The simulation is single-threaded, so contention cannot actually block;
what the class enforces and records is the mode logic, the context rules
(semaphore-mode acquisition may sleep and is thus forbidden in atomic
context), and acquisition statistics for the locking ablation.
"""

from ..kernel.errors import DeadlockError
from .domains import KERNEL


class ComboLock:
    def __init__(self, kernel, domains, name="combolock"):
        self._kernel = kernel
        self._domains = domains
        self.name = name
        self._held_by = None  # None | "kernel-spin" | "user-sem" | "kernel-sem"
        self._acquired_ns = None
        self.spin_acquisitions = 0
        self.sem_acquisitions = 0
        self.kernel_waits_on_user = 0

    @property
    def held(self):
        return self._held_by is not None

    @property
    def mode(self):
        return self._held_by

    def acquire(self):
        if self._domains.current == KERNEL:
            self._acquire_kernel()
        else:
            self._acquire_user()

    def _acquire_kernel(self):
        if self._held_by == "user-sem":
            # A kernel thread finding the lock user-held must wait on the
            # semaphore -- a sleeping operation.
            self._kernel.context.might_sleep(
                "combolock %s held by user mode" % self.name
            )
            self.kernel_waits_on_user += 1
            raise DeadlockError(
                "combolock %s: kernel acquisition while user holds it "
                "would block forever in a single-threaded simulation" % self.name
            )
        if self._held_by is not None:
            raise DeadlockError("combolock %s: recursive acquisition" % self.name)
        lockdep = self._kernel.lockdep
        if lockdep is not None:
            lockdep.check_acquire(self, "spin")
            lockdep.push(self)
        # Kernel-only acquisition: spinlock semantics.
        self._held_by = "kernel-spin"
        self.spin_acquisitions += 1
        self._kernel.context.preempt_disable()
        if self._kernel.tracer is not None:
            self._acquired_ns = self._kernel.clock.now_ns

    def _acquire_user(self):
        # User-mode acquisition: semaphore semantics; may sleep.
        lockdep = self._kernel.lockdep
        if lockdep is not None:
            lockdep.check_acquire(self, "combo-sem")
        self._kernel.context.might_sleep("combolock %s (semaphore mode)" % self.name)
        if self._held_by is not None:
            raise DeadlockError("combolock %s: recursive acquisition" % self.name)
        lockdep = self._kernel.lockdep
        if lockdep is not None:
            lockdep.push(self)
        self._held_by = "user-sem"
        self.sem_acquisitions += 1
        self._kernel.charge(self._kernel.costs.context_switch_ns, "locking")
        if self._kernel.tracer is not None:
            self._acquired_ns = self._kernel.clock.now_ns

    def release(self):
        if self._held_by is None:
            raise DeadlockError("combolock %s: release while not held" % self.name)
        mode = self._held_by
        if mode == "kernel-spin":
            self._kernel.context.preempt_enable()
        self._held_by = None
        lockdep = self._kernel.lockdep
        if lockdep is not None:
            lockdep.pop(self)
        tracer = self._kernel.tracer
        if tracer is not None and self._acquired_ns is not None:
            kind = "combo-spin" if mode == "kernel-spin" else "combo-sem"
            tracer.lock_span(self._acquired_ns, self.name, kind)
            self._acquired_ns = None

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False
