"""XDR-style marshaling between domains.

DriverSlicer emits, and this module executes, the paper's marshaling
scheme (sections 2.3, 3.2.2-3.2.3):

* **Selective-field copy**: only the fields the target domain actually
  accesses are transferred.  A :class:`MarshalPlan` carries per-struct
  :class:`FieldAccess` sets (reads / writes, i.e. the ``DECAF_RVAR`` /
  ``DECAF_WVAR`` / ``DECAF_RWVAR`` annotations); kernel->user transfers
  copy ``reads | writes``, user->kernel transfers copy only ``writes``.
* **Recursive data structures**: every object is recorded while being
  marshaled; encountering it again emits a back-reference, so circular
  lists and diamond shapes marshal once (section 3.2.3).  This extends
  across all parameters of one call via a shared encode context.
* **Object identity**: unmarshaling consults the destination object
  tracker before allocating, updating existing objects in place.
* **Opaque pointers**: kernel-private pointers cross as integer handles
  and are restored to the original kernel object when passed back.

Data genuinely flows through a byte buffer (4-byte-aligned XDR wire
format), so the byte counts the XPC layer charges are real.

Two fast-path mechanisms sit on top of the scheme (both produce
byte-identical wire data to the baseline):

* **Compiled codecs**: the per-(struct, direction) field list is cached
  on the plan and maximal runs of scalar fields are compiled into one
  precompiled :class:`struct.Struct` pack/unpack, replacing per-field
  ``struct.pack`` calls.  ``MarshalCodec(compiled=False)`` keeps the
  uncached per-field baseline callable for the ablation benchmarks.
* **Delta marshaling**: :class:`~repro.core.cstruct.CStruct` instances
  track attribute writes; a *return* trip encoded with ``delta=True``
  carries only fields actually mutated since the forward transfer
  (wire format per object: field count, then ``(field index, payload)``
  pairs indexed into the plan's field list).
"""

import struct as _struct

from .cstruct import Array, CONSTANTS, Exp, Null, Opaque, Ptr, Str, Struct

TAG_NULL = 0
TAG_OBJ = 1
TAG_BACKREF = 2
TAG_OPAQUE = 3
TAG_ARRAY = 4

TO_USER = "to_user"
TO_KERNEL = "to_kernel"

_U32 = _struct.Struct("<I")
_U64 = _struct.Struct("<Q")
_I32 = _struct.Struct("<i")
_I64 = _struct.Struct("<q")


class MarshalError(Exception):
    pass


class FieldAccess:
    """Which fields of one struct a user-level domain reads/writes."""

    def __init__(self, reads=(), writes=()):
        self.reads = set(reads)
        self.writes = set(writes)

    @property
    def all(self):
        return self.reads | self.writes

    def add_read(self, name):
        self.reads.add(name)

    def add_write(self, name):
        self.writes.add(name)

    def merged(self, other):
        return FieldAccess(self.reads | other.reads, self.writes | other.writes)

    def __repr__(self):
        return "FieldAccess(reads=%r, writes=%r)" % (
            sorted(self.reads), sorted(self.writes)
        )


# -- compiled field programs ---------------------------------------------------

OP_PACK = 0    # a run of plain scalar fields packed with one struct.Struct
OP_FIELD = 1   # a complex field handled by the generic per-field path


def _scalar_format_char(ctype):
    if ctype.size == 8:
        return "q" if ctype.signed else "Q"
    return "i" if ctype.signed else "I"


def compile_field_ops(fields):
    """Compile a field list into an op program for the fast codec path.

    Maximal runs of plain scalar fields collapse into one precompiled
    ``struct.Struct``; everything else (strings, arrays, pointers,
    embedded structs) falls back to the generic per-field handler.  The
    wire bytes are identical to the per-field baseline.
    """
    ops = []
    run_names, run_ctypes, run_fmt = [], [], "<"

    def close_run():
        if run_names:
            # Per-field decode clamps, with None where the wire format
            # is exactly as wide as the C type (4- and 8-byte scalars):
            # there struct.unpack already enforces the range, so the
            # store needs no clamp at all.
            decode_clamps = tuple(
                None if ct.size >= 4 else ct for ct in run_ctypes
            )
            # Sub-width fields (u8/u16...) ride a wider wire slot, so
            # encode must clamp them even when the pack() would accept
            # the raw value -- keeps wire bytes identical to baseline.
            encode_subclamps = tuple(
                (i, ct) for i, ct in enumerate(run_ctypes) if ct.size < 4
            )
            ops.append((OP_PACK, tuple(run_names), tuple(run_ctypes),
                        _struct.Struct(run_fmt), decode_clamps,
                        encode_subclamps))

    for field in fields:
        ctype = field.ctype
        if isinstance(ctype, (Ptr, Struct, Str, Array)):
            close_run()
            run_names, run_ctypes, run_fmt = [], [], "<"
            ops.append((OP_FIELD, field))
        else:
            run_names.append(field.name)
            run_ctypes.append(ctype)
            run_fmt += _scalar_format_char(ctype)
    close_run()
    return tuple(ops)


def pack_format_for(fields):
    """The flattened scalar pack format for a field list (for reports:
    the cacheable artifact DriverSlicer emits alongside the XDR spec)."""
    return "<" + "".join(
        _scalar_format_char(f.ctype) for f in fields
        if not isinstance(f.ctype, (Ptr, Struct, Str, Array))
    )


class MarshalPlan:
    """Per-struct field-access sets.  Without an entry, all fields cross
    (the whole-struct baseline the selective-marshaling ablation
    compares against).

    The plan also owns the codec caches: per-(struct, direction) field
    lists and compiled op programs, shared by every channel using the
    plan.  Mutating the plan via :meth:`set_access` invalidates both.
    """

    def __init__(self, accesses=None, pinned=None):
        self._accesses = dict(accesses or {})
        self._pinned = {name: frozenset(fields)
                        for name, fields in (pinned or {}).items()}
        self._field_cache = {}
        self._op_cache = {}

    def set_access(self, struct_name, access):
        self._accesses[struct_name] = access
        self._field_cache.clear()
        self._op_cache.clear()

    def pin(self, struct_name, *field_names):
        """Mark fields as kernel-owned: excluded from the user->kernel
        direction entirely, whatever the access analysis saw.

        The analysis answers a liveness question (does the sliced code
        touch this field?); write-back trust is a security one.  A
        hardware resource handle -- MMIO/IO base, irq line, DMA base --
        may well be *written* by legacy probe code that ended up in the
        user slice, but accepting it back from a (possibly compromised)
        user half lets corrupt state poison the kernel-side object and
        survive supervised restarts, which re-marshal kernel state into
        the fresh half.  Pinned fields simply never appear in TO_KERNEL
        field lists; the wire format is positional over those lists on
        both sides, so a hostile payload cannot even address them."""
        pinned = set(self._pinned.get(struct_name, ())) | set(field_names)
        self._pinned[struct_name] = frozenset(pinned)
        self._field_cache.clear()
        self._op_cache.clear()

    def pinned_for(self, struct_cls):
        return self._pinned.get(struct_cls.__name__, frozenset())

    def access_for(self, struct_cls):
        return self._accesses.get(struct_cls.__name__)

    def uncached_fields_for(self, struct_cls, direction):
        """Re-derive the field list on every call (the seed baseline the
        compiled-codec ablation measures against)."""
        access = self.access_for(struct_cls)
        if access is None:
            fields = list(struct_cls.fields())
        else:
            wanted = access.all if direction == TO_USER else access.writes
            fields = [f for f in struct_cls.fields() if f.name in wanted]
        if direction == TO_KERNEL:
            pinned = self.pinned_for(struct_cls)
            if pinned:
                fields = [f for f in fields if f.name not in pinned]
        return fields

    def fields_for(self, struct_cls, direction):
        key = (struct_cls, direction)
        cached = self._field_cache.get(key)
        if cached is None:
            cached = tuple(self.uncached_fields_for(struct_cls, direction))
            self._field_cache[key] = cached
        return cached

    def compiled_ops_for(self, struct_cls, direction):
        key = (struct_cls, direction)
        ops = self._op_cache.get(key)
        if ops is None:
            ops = compile_field_ops(self.fields_for(struct_cls, direction))
            self._op_cache[key] = ops
        return ops

    def struct_names(self):
        return sorted(self._accesses)


class TypeRegistry:
    """Stable small integers standing in for 'address of the C XDR
    marshaling function' as the per-type identifier.

    Each :class:`~repro.core.xpc.XpcChannel` owns a private registry, so
    type-id assignment cannot leak between rigs or tests; both ends of a
    channel share the channel's instance, which is what keeps the wire
    ids consistent.
    """

    def __init__(self):
        self._ids = {}
        self._by_id = {}

    def id_of(self, struct_cls):
        key = struct_cls.__name__
        if key not in self._ids:
            new_id = len(self._ids) + 1
            self._ids[key] = new_id
            self._by_id[new_id] = struct_cls
        return self._ids[key]

    def struct_for(self, type_id):
        return self._by_id.get(type_id)

    def reset(self):
        self._ids.clear()
        self._by_id.clear()

    def __len__(self):
        return len(self._ids)


class TypeIds:
    """The process-wide default :class:`TypeRegistry` (legacy facade).

    Codecs built without a channel fall back to this shared instance.
    Tests and rig teardown may call :meth:`reset` to restore a pristine
    table; channels are unaffected, since each owns its own registry.
    """

    _default = TypeRegistry()

    @classmethod
    def default(cls):
        return cls._default

    @classmethod
    def id_of(cls, struct_cls):
        return cls._default.id_of(struct_cls)

    @classmethod
    def struct_for(cls, type_id):
        return cls._default.struct_for(type_id)

    @classmethod
    def reset(cls):
        cls._default.reset()


class XdrBuffer:
    """XDR-flavoured wire buffer: everything 4-byte aligned.

    Decode is *hostile-input safe*: every read validates the remaining
    buffer first and raises :class:`MarshalError` on underrun, so a
    truncated or length-corrupted payload from a compromised user half
    surfaces as a checked marshaling failure at the boundary, never as a
    raw ``struct.error`` inside the kernel.
    """

    def __init__(self, data=b""):
        self.data = bytearray(data)
        self.pos = 0

    def __len__(self):
        return len(self.data)

    @property
    def remaining(self):
        return len(self.data) - self.pos

    def need(self, n):
        """Validate that ``n`` more payload bytes exist before reading."""
        if len(self.data) - self.pos < n:
            raise MarshalError(
                "wire underrun: need %d bytes at offset %d of %d"
                % (n, self.pos, len(self.data))
            )

    # encode
    def put_u32(self, v):
        self.data += _U32.pack(v & 0xFFFFFFFF)

    def put_u64(self, v):
        self.data += _U64.pack(v & 0xFFFFFFFFFFFFFFFF)

    def put_scalar(self, ctype, value):
        # XDR promotes everything below 4 bytes to 4 ("hyper" is 8).
        value = ctype.clamp(int(value))
        if ctype.size == 8:
            self.data += (_I64 if ctype.signed else _U64).pack(value)
        else:
            self.data += (_I32 if ctype.signed else _U32).pack(value)

    def put_bytes(self, raw):
        self.put_u32(len(raw))
        self.data += raw
        pad = -len(self.data) % 4
        if pad:
            self.data += b"\x00\x00\x00"[:pad]

    # decode
    def get_u32(self):
        self.need(4)
        v = _U32.unpack_from(self.data, self.pos)[0]
        self.pos += 4
        return v

    def get_u64(self):
        self.need(8)
        v = _U64.unpack_from(self.data, self.pos)[0]
        self.pos += 8
        return v

    def get_scalar(self, ctype):
        if ctype.size == 8:
            self.need(8)
            v = (_I64 if ctype.signed else _U64).unpack_from(
                self.data, self.pos)[0]
            self.pos += 8
        else:
            self.need(4)
            v = (_I32 if ctype.signed else _U32).unpack_from(
                self.data, self.pos)[0]
            self.pos += 4
        return ctype.clamp(v)

    def get_bytes(self):
        n = self.get_u32()
        # The length word is attacker-controlled: validate against the
        # remaining buffer *before* slicing (a bare slice would silently
        # return short data; a 0xFFFFFFFF length must not look like a
        # legal empty read).
        self.need(n)
        raw = bytes(self.data[self.pos:self.pos + n])
        self.pos += n + (-n % 4)
        return raw


class TransferContext:
    """Destination-side object resolution used during decode.

    The default implementation is tracker-less (always allocates); the
    XPC channel subclasses it to consult the kernel/user object
    trackers and the opaque-handle table.
    """

    def resolve(self, identity, struct_cls, type_id):
        """Return (obj, created) for a marshaled object record."""
        return struct_cls(), True

    def register(self, identity, struct_cls, type_id, obj):
        """Record identity of an embedded struct reached via a parent."""

    def identity_of(self, obj):
        """Source side: the wire identity of an object.

        The kernel side uses the object's own C address.  The user side
        overrides this to translate a Java object to the kernel pointer
        it mirrors (Fig. 2's ``xlate_j_to_c``).
        """
        return obj.c_addr

    def handle_of(self, obj):
        """Source side: opaque handle for a kernel-private object."""
        if obj is None:
            return 0
        if hasattr(obj, "c_addr"):
            return obj.c_addr
        if isinstance(obj, int):
            return obj
        return id(obj)

    def object_of(self, handle):
        """Destination side: restore an opaque handle."""
        return handle


class _DecodeSeen:
    """Decode-side back-reference table.

    Mirrors the encoder's seen-dict indexing exactly: an identity is
    assigned an index the first time it is encountered, whether it
    arrives as a pointed-to object record or inline as an embedded
    struct.  Both sides must agree on this ordering for back-reference
    indices to resolve.
    """

    def __init__(self):
        self.objects = []
        self._ids = set()

    def add(self, identity, obj):
        if identity in self._ids:
            return
        self._ids.add(identity)
        self.objects.append(obj)


def _graph_has_dirty(obj, _visited=None):
    """True if any object reachable from ``obj`` through pointer or
    embedded-struct fields carries dirty marks (delta-marshaling
    inclusion test for unreassigned pointers)."""
    if obj is None:
        return False
    dirty = getattr(obj, "_dirty_fields", None)
    if dirty is None:
        return True  # no tracking info: assume mutated
    if dirty:
        return True
    fields = getattr(type(obj), "_fields", ())
    if _visited is None:
        _visited = set()
    if id(obj) in _visited:
        return False
    _visited.add(id(obj))
    for field in fields:
        ctype = field.ctype
        if isinstance(ctype, Struct):
            if _graph_has_dirty(getattr(obj, field.name), _visited):
                return True
        elif isinstance(ctype, Ptr):
            if (field.annotation(Opaque) is None
                    and field.annotation(Null) is None
                    and field.annotation(Exp) is None):
                if _graph_has_dirty(getattr(obj, field.name), _visited):
                    return True
    return False


class MarshalCodec:
    """Encode/decode struct graphs per a :class:`MarshalPlan`.

    ``compiled=True`` (the default) uses the plan's cached field lists
    and precompiled scalar packers; ``compiled=False`` keeps the seed's
    uncached per-field path callable for the ablation benchmarks.  Both
    paths produce identical wire bytes.
    """

    def __init__(self, plan=None, type_ids=None, compiled=True):
        self.plan = plan or MarshalPlan()
        self.type_ids = type_ids if type_ids is not None else TypeIds.default()
        self.compiled = compiled
        self.objects_marshaled = 0
        self.fields_marshaled = 0
        self.backrefs = 0
        self.delta_fields_skipped = 0
        self.last_decoded_objects = ()
        self._call_fields = 0

    # -- encode ------------------------------------------------------------------

    def encode(self, obj, struct_cls, direction, ctx=None, _shared_seen=None,
               delta=False):
        """Marshal one object graph; returns wire bytes."""
        ctx = ctx or TransferContext()
        buf = XdrBuffer()
        seen = _shared_seen if _shared_seen is not None else {}
        self._encode_ref(buf, obj, struct_cls, direction, ctx, seen, delta)
        return bytes(buf.data)

    def encode_args(self, args, direction, ctx=None, delta=False):
        """Marshal several (obj, struct_cls) parameters with one shared
        back-reference table, so a struct passed twice crosses once.

        Returns ``(data, nfields)`` where ``nfields`` counts the fields
        marshaled by *this call* (the XPC layer charges per-field costs
        from it; the codec-global ``fields_marshaled`` remains a
        lifetime statistic).
        """
        ctx = ctx or TransferContext()
        buf = XdrBuffer()
        seen = {}
        saved = self._call_fields
        self._call_fields = 0
        try:
            buf.put_u32(len(args))
            for obj, struct_cls in args:
                self._encode_ref(buf, obj, struct_cls, direction, ctx, seen,
                                 delta)
            nfields = self._call_fields
        finally:
            self._call_fields = saved
        return bytes(buf.data), nfields

    def _encode_ref(self, buf, obj, struct_cls, direction, ctx, seen, delta):
        if obj is None:
            buf.put_u32(TAG_NULL)
            return
        identity = ctx.identity_of(obj)
        if identity in seen:
            buf.put_u32(TAG_BACKREF)
            buf.put_u32(seen[identity])
            self.backrefs += 1
            return
        buf.put_u32(TAG_OBJ)
        buf.put_u64(identity)
        buf.put_u32(self.type_ids.id_of(type(obj)))
        seen[identity] = len(seen)
        self._encode_payload(buf, obj, type(obj), identity, direction, ctx,
                             seen, delta)

    def _encode_payload(self, buf, obj, struct_cls, identity, direction, ctx,
                        seen, delta):
        self.objects_marshaled += 1
        if delta:
            self._encode_payload_delta(buf, obj, struct_cls, identity,
                                       direction, ctx, seen)
            return
        if self.compiled:
            od = obj.__dict__
            for op in self.plan.compiled_ops_for(struct_cls, direction):
                if op[0] == OP_PACK:
                    _tag, names, ctypes, packer, _dc, subclamps = op
                    vals = [od[n] for n in names]
                    for i, ct in subclamps:
                        vals[i] = ct.clamp(int(vals[i] or 0))
                    try:
                        # Raw pack: in-range ints (the overwhelmingly
                        # common case) need no full-width clamping.
                        buf.data += packer.pack(*vals)
                    except (TypeError, _struct.error):
                        # None or out-of-range somewhere in the run:
                        # redo it clamped, matching the baseline bytes.
                        buf.data += packer.pack(
                            *[ct.clamp(int(od[name] or 0))
                              for name, ct in zip(names, ctypes)]
                        )
                    n = len(names)
                    self.fields_marshaled += n
                    self._call_fields += n
                else:
                    field = op[1]
                    self.fields_marshaled += 1
                    self._call_fields += 1
                    self._encode_field(buf, field, getattr(obj, field.name),
                                       identity, direction, ctx, seen, delta)
        else:
            for field in self.plan.uncached_fields_for(struct_cls, direction):
                self.fields_marshaled += 1
                self._call_fields += 1
                self._encode_field(buf, field, getattr(obj, field.name),
                                   identity, direction, ctx, seen, delta)

    # -- delta (dirty-field) payloads ---------------------------------------------

    def _delta_wanted(self, obj, field, dirty):
        """Should this field cross on a delta return trip?

        Scalar and string fields cross only when written.  Fields whose
        values can mutate without an attribute write being observed
        (inline arrays, exp-length arrays -- both plain Python lists)
        always cross.  Pointer and embedded-struct fields cross when
        reassigned or when the referenced graph carries dirty marks.
        """
        ctype = field.ctype
        if dirty is None:
            return True  # no tracking info: full copy
        if isinstance(ctype, Array):
            return True
        if isinstance(ctype, Ptr):
            if field.annotation(Exp) is not None:
                return True
            if (field.annotation(Opaque) is not None
                    or field.annotation(Null) is not None):
                return field.name in dirty
            return (field.name in dirty
                    or _graph_has_dirty(getattr(obj, field.name)))
        if isinstance(ctype, Struct):
            return _graph_has_dirty(getattr(obj, field.name))
        return field.name in dirty

    def _encode_payload_delta(self, buf, obj, struct_cls, identity, direction,
                              ctx, seen):
        fields = self.plan.fields_for(struct_cls, direction)
        dirty = getattr(obj, "_dirty_fields", None)
        included = [
            (index, field) for index, field in enumerate(fields)
            if self._delta_wanted(obj, field, dirty)
        ]
        self.delta_fields_skipped += len(fields) - len(included)
        buf.put_u32(len(included))
        for index, field in included:
            buf.put_u32(index)
            self.fields_marshaled += 1
            self._call_fields += 1
            self._encode_field(buf, field, getattr(obj, field.name), identity,
                               direction, ctx, seen, delta=True)

    def _encode_field(self, buf, field, value, parent_identity, direction, ctx,
                      seen, delta):
        ctype = field.ctype
        if isinstance(ctype, Ptr):
            if field.annotation(Null) is not None:
                buf.put_u32(TAG_NULL)
            elif field.annotation(Opaque) is not None:
                buf.put_u32(TAG_OPAQUE)
                buf.put_u64(ctx.handle_of(value))
            elif field.annotation(Exp) is not None:
                self._encode_exp_array(buf, value)
            else:
                target = ctype.resolve()
                if value is not None and not isinstance(value, target):
                    raise MarshalError(
                        "field %s: expected %s, got %r"
                        % (field.name, target.__name__, type(value).__name__)
                    )
                self._encode_ref(buf, value, target, direction, ctx, seen,
                                 delta)
        elif isinstance(ctype, Struct):
            # Embedded: part of the parent record, encoded inline; its
            # wire identity is parent + offset (its C address).
            child_identity = parent_identity + field.offset
            self._encode_payload(
                buf, value, ctype.struct_cls, child_identity, direction, ctx,
                seen, delta
            )
            seen.setdefault(child_identity, len(seen))
        elif isinstance(ctype, Str):
            raw = str(value or "").encode("utf-8")[: ctype.length]
            buf.put_bytes(raw)
        elif isinstance(ctype, Array):
            for i in range(ctype.length):
                elem = value[i] if value is not None and i < len(value) else 0
                buf.put_scalar(ctype.elem, elem)
        else:
            buf.put_scalar(ctype, value or 0)

    def _encode_exp_array(self, buf, value):
        if value is None:
            buf.put_u32(TAG_NULL)
            return
        buf.put_u32(TAG_ARRAY)
        buf.put_u32(len(value))
        for elem in value:
            buf.put_u32(int(elem) & 0xFFFFFFFF)

    # -- decode -------------------------------------------------------------------

    def decode(self, data, struct_cls, direction, ctx=None, delta=False):
        ctx = ctx or TransferContext()
        buf = XdrBuffer(data)
        seen = _DecodeSeen()
        out = self._decode_ref(buf, struct_cls, direction, ctx, seen, delta)
        self.last_decoded_objects = tuple(seen.objects)
        return out

    def decode_args(self, data, struct_classes, direction, ctx=None,
                    delta=False):
        ctx = ctx or TransferContext()
        buf = XdrBuffer(data)
        seen = _DecodeSeen()
        count = buf.get_u32()
        if count != len(struct_classes):
            raise MarshalError(
                "argument count mismatch: wire has %d, caller expects %d"
                % (count, len(struct_classes))
            )
        out = [
            self._decode_ref(buf, cls, direction, ctx, seen, delta)
            for cls in struct_classes
        ]
        self.last_decoded_objects = tuple(seen.objects)
        return out

    def _decode_ref(self, buf, struct_cls, direction, ctx, seen, delta):
        tag = buf.get_u32()
        if tag == TAG_NULL:
            return None
        if tag == TAG_BACKREF:
            index = buf.get_u32()
            try:
                return seen.objects[index]
            except IndexError:
                raise MarshalError("bad backref index %d" % index) from None
        if tag != TAG_OBJ:
            raise MarshalError("expected object tag, got %d" % tag)
        identity = buf.get_u64()
        type_id = buf.get_u32()
        wire_cls = self.type_ids.struct_for(type_id)
        if wire_cls is None:
            raise MarshalError("unknown type id %d" % type_id)
        obj, _created = ctx.resolve(identity, wire_cls, type_id)
        seen.add(identity, obj)
        self._decode_payload(buf, obj, wire_cls, identity, direction, ctx,
                             seen, delta)
        return obj

    def _decode_payload(self, buf, obj, struct_cls, identity, direction, ctx,
                        seen, delta):
        if delta:
            self._decode_payload_delta(buf, obj, struct_cls, identity,
                                       direction, ctx, seen)
            return
        if self.compiled:
            # Twins land clean either way (the channel clears dirty
            # marks after every transfer), so scalar stores go straight
            # into the instance dict, skipping __setattr__ tracking.
            od = obj.__dict__
            for op in self.plan.compiled_ops_for(struct_cls, direction):
                if op[0] == OP_PACK:
                    _tag, names, _ctypes, packer, dclamps, _sc = op
                    buf.need(packer.size)
                    values = packer.unpack_from(buf.data, buf.pos)
                    buf.pos += packer.size
                    for name, ct, value in zip(names, dclamps, values):
                        od[name] = value if ct is None else ct.clamp(value)
                else:
                    self._decode_field(buf, obj, op[1], identity, direction,
                                       ctx, seen, delta)
        else:
            for field in self.plan.uncached_fields_for(struct_cls, direction):
                self._decode_field(buf, obj, field, identity, direction, ctx,
                                   seen, delta)

    def _decode_payload_delta(self, buf, obj, struct_cls, identity, direction,
                              ctx, seen):
        fields = self.plan.fields_for(struct_cls, direction)
        count = buf.get_u32()
        # A well-formed delta includes each plan field at most once; a
        # larger count is forged and would otherwise drive a near-2^32
        # decode loop off a 4-byte wire word.
        if count > len(fields):
            raise MarshalError(
                "delta field count %d exceeds the %d plan fields of %s"
                % (count, len(fields), struct_cls.__name__)
            )
        for _ in range(count):
            index = buf.get_u32()
            try:
                field = fields[index]
            except IndexError:
                raise MarshalError(
                    "bad delta field index %d for %s"
                    % (index, struct_cls.__name__)
                ) from None
            self._decode_field(buf, obj, field, identity, direction, ctx,
                               seen, delta=True)

    def _decode_field(self, buf, obj, field, parent_identity, direction, ctx,
                      seen, delta):
        ctype = field.ctype
        if isinstance(ctype, Ptr):
            if field.annotation(Null) is not None:
                tag = buf.get_u32()
                if tag != TAG_NULL:
                    raise MarshalError("null-annotated field carried data")
                setattr(obj, field.name, None)
            elif field.annotation(Opaque) is not None:
                tag = buf.get_u32()
                if tag != TAG_OPAQUE:
                    raise MarshalError("expected opaque handle")
                handle = buf.get_u64()
                setattr(obj, field.name, ctx.object_of(handle))
            elif field.annotation(Exp) is not None:
                setattr(obj, field.name, self._decode_exp_array(buf))
            else:
                target = ctype.resolve()
                value = self._decode_ref(buf, target, direction, ctx, seen,
                                         delta)
                setattr(obj, field.name, value)
        elif isinstance(ctype, Struct):
            child = getattr(obj, field.name)
            child_identity = parent_identity + field.offset
            ctx.register(
                child_identity, ctype.struct_cls,
                self.type_ids.id_of(ctype.struct_cls), child,
            )
            self._decode_payload(
                buf, child, ctype.struct_cls, child_identity, direction, ctx,
                seen, delta
            )
            seen.add(child_identity, child)
        elif isinstance(ctype, Str):
            raw = buf.get_bytes()
            try:
                text = raw.decode("utf-8")
            except UnicodeDecodeError:
                raise MarshalError(
                    "field %s: string payload is not valid utf-8"
                    % field.name
                ) from None
            setattr(obj, field.name, text)
        elif isinstance(ctype, Array):
            setattr(
                obj,
                field.name,
                [buf.get_scalar(ctype.elem) for _ in range(ctype.length)],
            )
        else:
            setattr(obj, field.name, buf.get_scalar(ctype))

    def _decode_exp_array(self, buf):
        tag = buf.get_u32()
        if tag == TAG_NULL:
            return None
        if tag != TAG_ARRAY:
            raise MarshalError("expected array tag, got %d" % tag)
        length = buf.get_u32()
        # Each element is one u32: validate the whole extent up front so
        # a forged length fails fast instead of allocating a multi-GB
        # list four bytes at a time.
        buf.need(4 * length)
        return [buf.get_u32() for _ in range(length)]


def exp_length(field, obj):
    """Resolve an Exp annotation to a concrete length."""
    ann = field.annotation(Exp)
    if ann is None:
        return None
    if ann.expr in CONSTANTS:
        return CONSTANTS[ann.expr]
    sibling = getattr(obj, ann.expr, None)
    if sibling is None:
        raise MarshalError(
            "cannot resolve exp(%s) on %s" % (ann.expr, type(obj).__name__)
        )
    return int(sibling)
