"""XDR-style marshaling between domains.

DriverSlicer emits, and this module executes, the paper's marshaling
scheme (sections 2.3, 3.2.2-3.2.3):

* **Selective-field copy**: only the fields the target domain actually
  accesses are transferred.  A :class:`MarshalPlan` carries per-struct
  :class:`FieldAccess` sets (reads / writes, i.e. the ``DECAF_RVAR`` /
  ``DECAF_WVAR`` / ``DECAF_RWVAR`` annotations); kernel->user transfers
  copy ``reads | writes``, user->kernel transfers copy only ``writes``.
* **Recursive data structures**: every object is recorded while being
  marshaled; encountering it again emits a back-reference, so circular
  lists and diamond shapes marshal once (section 3.2.3).  This extends
  across all parameters of one call via a shared encode context.
* **Object identity**: unmarshaling consults the destination object
  tracker before allocating, updating existing objects in place.
* **Opaque pointers**: kernel-private pointers cross as integer handles
  and are restored to the original kernel object when passed back.

Data genuinely flows through a byte buffer (4-byte-aligned XDR wire
format), so the byte counts the XPC layer charges are real.
"""

import struct as _struct

from .cstruct import Array, CONSTANTS, Exp, Null, Opaque, Ptr, Str, Struct

TAG_NULL = 0
TAG_OBJ = 1
TAG_BACKREF = 2
TAG_OPAQUE = 3
TAG_ARRAY = 4

TO_USER = "to_user"
TO_KERNEL = "to_kernel"


class MarshalError(Exception):
    pass


class FieldAccess:
    """Which fields of one struct a user-level domain reads/writes."""

    def __init__(self, reads=(), writes=()):
        self.reads = set(reads)
        self.writes = set(writes)

    @property
    def all(self):
        return self.reads | self.writes

    def add_read(self, name):
        self.reads.add(name)

    def add_write(self, name):
        self.writes.add(name)

    def merged(self, other):
        return FieldAccess(self.reads | other.reads, self.writes | other.writes)

    def __repr__(self):
        return "FieldAccess(reads=%r, writes=%r)" % (
            sorted(self.reads), sorted(self.writes)
        )


class MarshalPlan:
    """Per-struct field-access sets.  Without an entry, all fields cross
    (the whole-struct baseline the selective-marshaling ablation
    compares against)."""

    def __init__(self, accesses=None):
        self._accesses = dict(accesses or {})

    def set_access(self, struct_name, access):
        self._accesses[struct_name] = access

    def access_for(self, struct_cls):
        return self._accesses.get(struct_cls.__name__)

    def fields_for(self, struct_cls, direction):
        access = self.access_for(struct_cls)
        if access is None:
            return list(struct_cls.fields())
        wanted = access.all if direction == TO_USER else access.writes
        return [f for f in struct_cls.fields() if f.name in wanted]

    def struct_names(self):
        return sorted(self._accesses)


class TypeIds:
    """Stable small integers standing in for 'address of the C XDR
    marshaling function' as the per-type identifier."""

    _ids = {}
    _by_id = {}

    @classmethod
    def id_of(cls, struct_cls):
        key = struct_cls.__name__
        if key not in cls._ids:
            new_id = len(cls._ids) + 1
            cls._ids[key] = new_id
            cls._by_id[new_id] = struct_cls
        return cls._ids[key]

    @classmethod
    def struct_for(cls, type_id):
        return cls._by_id.get(type_id)


class XdrBuffer:
    """XDR-flavoured wire buffer: everything 4-byte aligned."""

    def __init__(self, data=b""):
        self.data = bytearray(data)
        self.pos = 0

    def __len__(self):
        return len(self.data)

    # encode
    def put_u32(self, v):
        self.data += _struct.pack("<I", v & 0xFFFFFFFF)

    def put_u64(self, v):
        self.data += _struct.pack("<Q", v & 0xFFFFFFFFFFFFFFFF)

    def put_scalar(self, ctype, value):
        # XDR promotes everything below 4 bytes to 4 ("hyper" is 8).
        value = ctype.clamp(int(value))
        if ctype.size == 8:
            self.data += _struct.pack("<q" if ctype.signed else "<Q", value)
        else:
            self.data += _struct.pack("<i" if ctype.signed else "<I", value)

    def put_bytes(self, raw):
        self.put_u32(len(raw))
        self.data += raw
        while len(self.data) % 4:
            self.data += b"\x00"

    # decode
    def get_u32(self):
        v = _struct.unpack_from("<I", self.data, self.pos)[0]
        self.pos += 4
        return v

    def get_u64(self):
        v = _struct.unpack_from("<Q", self.data, self.pos)[0]
        self.pos += 8
        return v

    def get_scalar(self, ctype):
        if ctype.size == 8:
            fmt = "<q" if ctype.signed else "<Q"
            v = _struct.unpack_from(fmt, self.data, self.pos)[0]
            self.pos += 8
        else:
            fmt = "<i" if ctype.signed else "<I"
            v = _struct.unpack_from(fmt, self.data, self.pos)[0]
            self.pos += 4
        return ctype.clamp(v)

    def get_bytes(self):
        n = self.get_u32()
        raw = bytes(self.data[self.pos:self.pos + n])
        self.pos += n
        while self.pos % 4:
            self.pos += 1
        return raw


class TransferContext:
    """Destination-side object resolution used during decode.

    The default implementation is tracker-less (always allocates); the
    XPC channel subclasses it to consult the kernel/user object
    trackers and the opaque-handle table.
    """

    def resolve(self, identity, struct_cls, type_id):
        """Return (obj, created) for a marshaled object record."""
        return struct_cls(), True

    def register(self, identity, struct_cls, type_id, obj):
        """Record identity of an embedded struct reached via a parent."""

    def identity_of(self, obj):
        """Source side: the wire identity of an object.

        The kernel side uses the object's own C address.  The user side
        overrides this to translate a Java object to the kernel pointer
        it mirrors (Fig. 2's ``xlate_j_to_c``).
        """
        return obj.c_addr

    def handle_of(self, obj):
        """Source side: opaque handle for a kernel-private object."""
        if obj is None:
            return 0
        if hasattr(obj, "c_addr"):
            return obj.c_addr
        if isinstance(obj, int):
            return obj
        return id(obj)

    def object_of(self, handle):
        """Destination side: restore an opaque handle."""
        return handle


class _DecodeSeen:
    """Decode-side back-reference table.

    Mirrors the encoder's seen-dict indexing exactly: an identity is
    assigned an index the first time it is encountered, whether it
    arrives as a pointed-to object record or inline as an embedded
    struct.  Both sides must agree on this ordering for back-reference
    indices to resolve.
    """

    def __init__(self):
        self.objects = []
        self._ids = set()

    def add(self, identity, obj):
        if identity in self._ids:
            return
        self._ids.add(identity)
        self.objects.append(obj)


class MarshalCodec:
    """Encode/decode struct graphs per a :class:`MarshalPlan`."""

    def __init__(self, plan=None):
        self.plan = plan or MarshalPlan()
        self.objects_marshaled = 0
        self.fields_marshaled = 0
        self.backrefs = 0

    # -- encode ------------------------------------------------------------------

    def encode(self, obj, struct_cls, direction, ctx=None, _shared_seen=None):
        """Marshal one object graph; returns wire bytes."""
        ctx = ctx or TransferContext()
        buf = XdrBuffer()
        seen = _shared_seen if _shared_seen is not None else {}
        self._encode_ref(buf, obj, struct_cls, direction, ctx, seen)
        return bytes(buf.data)

    def encode_args(self, args, direction, ctx=None):
        """Marshal several (obj, struct_cls) parameters with one shared
        back-reference table, so a struct passed twice crosses once."""
        ctx = ctx or TransferContext()
        buf = XdrBuffer()
        seen = {}
        buf.put_u32(len(args))
        for obj, struct_cls in args:
            self._encode_ref(buf, obj, struct_cls, direction, ctx, seen)
        return bytes(buf.data)

    def _encode_ref(self, buf, obj, struct_cls, direction, ctx, seen):
        if obj is None:
            buf.put_u32(TAG_NULL)
            return
        identity = ctx.identity_of(obj)
        if identity in seen:
            buf.put_u32(TAG_BACKREF)
            buf.put_u32(seen[identity])
            self.backrefs += 1
            return
        buf.put_u32(TAG_OBJ)
        buf.put_u64(identity)
        buf.put_u32(TypeIds.id_of(type(obj)))
        seen[identity] = len(seen)
        self._encode_payload(buf, obj, type(obj), identity, direction, ctx, seen)

    def _encode_payload(self, buf, obj, struct_cls, identity, direction, ctx, seen):
        self.objects_marshaled += 1
        for field in self.plan.fields_for(struct_cls, direction):
            self.fields_marshaled += 1
            value = getattr(obj, field.name)
            self._encode_field(buf, field, value, identity, direction, ctx, seen)

    def _encode_field(self, buf, field, value, parent_identity, direction, ctx, seen):
        ctype = field.ctype
        if isinstance(ctype, Ptr):
            if field.annotation(Null) is not None:
                buf.put_u32(TAG_NULL)
            elif field.annotation(Opaque) is not None:
                buf.put_u32(TAG_OPAQUE)
                buf.put_u64(ctx.handle_of(value))
            elif field.annotation(Exp) is not None:
                self._encode_exp_array(buf, value)
            else:
                target = ctype.resolve()
                if value is not None and not isinstance(value, target):
                    raise MarshalError(
                        "field %s: expected %s, got %r"
                        % (field.name, target.__name__, type(value).__name__)
                    )
                self._encode_ref(buf, value, target, direction, ctx, seen)
        elif isinstance(ctype, Struct):
            # Embedded: part of the parent record, encoded inline; its
            # wire identity is parent + offset (its C address).
            child_identity = parent_identity + field.offset
            self._encode_payload(
                buf, value, ctype.struct_cls, child_identity, direction, ctx, seen
            )
            seen.setdefault(child_identity, len(seen))
        elif isinstance(ctype, Str):
            raw = str(value or "").encode("utf-8")[: ctype.length]
            buf.put_bytes(raw)
        elif isinstance(ctype, Array):
            for i in range(ctype.length):
                elem = value[i] if value is not None and i < len(value) else 0
                buf.put_scalar(ctype.elem, elem)
        else:
            buf.put_scalar(ctype, value or 0)

    def _encode_exp_array(self, buf, value):
        if value is None:
            buf.put_u32(TAG_NULL)
            return
        buf.put_u32(TAG_ARRAY)
        buf.put_u32(len(value))
        for elem in value:
            buf.put_u32(int(elem) & 0xFFFFFFFF)

    # -- decode -------------------------------------------------------------------

    def decode(self, data, struct_cls, direction, ctx=None):
        ctx = ctx or TransferContext()
        buf = XdrBuffer(data)
        seen = _DecodeSeen()
        return self._decode_ref(buf, struct_cls, direction, ctx, seen)

    def decode_args(self, data, struct_classes, direction, ctx=None):
        ctx = ctx or TransferContext()
        buf = XdrBuffer(data)
        seen = _DecodeSeen()
        count = buf.get_u32()
        if count != len(struct_classes):
            raise MarshalError(
                "argument count mismatch: wire has %d, caller expects %d"
                % (count, len(struct_classes))
            )
        return [
            self._decode_ref(buf, cls, direction, ctx, seen)
            for cls in struct_classes
        ]

    def _decode_ref(self, buf, struct_cls, direction, ctx, seen):
        tag = buf.get_u32()
        if tag == TAG_NULL:
            return None
        if tag == TAG_BACKREF:
            index = buf.get_u32()
            try:
                return seen.objects[index]
            except IndexError:
                raise MarshalError("bad backref index %d" % index) from None
        if tag != TAG_OBJ:
            raise MarshalError("expected object tag, got %d" % tag)
        identity = buf.get_u64()
        type_id = buf.get_u32()
        wire_cls = TypeIds.struct_for(type_id)
        if wire_cls is None:
            raise MarshalError("unknown type id %d" % type_id)
        obj, _created = ctx.resolve(identity, wire_cls, type_id)
        seen.add(identity, obj)
        self._decode_payload(buf, obj, wire_cls, identity, direction, ctx, seen)
        return obj

    def _decode_payload(self, buf, obj, struct_cls, identity, direction, ctx, seen):
        for field in self.plan.fields_for(struct_cls, direction):
            self._decode_field(buf, obj, field, identity, direction, ctx, seen)

    def _decode_field(self, buf, obj, field, parent_identity, direction, ctx, seen):
        ctype = field.ctype
        if isinstance(ctype, Ptr):
            if field.annotation(Null) is not None:
                tag = buf.get_u32()
                if tag != TAG_NULL:
                    raise MarshalError("null-annotated field carried data")
                setattr(obj, field.name, None)
            elif field.annotation(Opaque) is not None:
                tag = buf.get_u32()
                if tag != TAG_OPAQUE:
                    raise MarshalError("expected opaque handle")
                handle = buf.get_u64()
                setattr(obj, field.name, ctx.object_of(handle))
            elif field.annotation(Exp) is not None:
                setattr(obj, field.name, self._decode_exp_array(buf))
            else:
                target = ctype.resolve()
                value = self._decode_ref(buf, target, direction, ctx, seen)
                setattr(obj, field.name, value)
        elif isinstance(ctype, Struct):
            child = getattr(obj, field.name)
            child_identity = parent_identity + field.offset
            ctx.register(
                child_identity, ctype.struct_cls,
                TypeIds.id_of(ctype.struct_cls), child,
            )
            self._decode_payload(
                buf, child, ctype.struct_cls, child_identity, direction, ctx, seen
            )
            seen.add(child_identity, child)
        elif isinstance(ctype, Str):
            setattr(obj, field.name, buf.get_bytes().decode("utf-8"))
        elif isinstance(ctype, Array):
            setattr(
                obj,
                field.name,
                [buf.get_scalar(ctype.elem) for _ in range(ctype.length)],
            )
        else:
            setattr(obj, field.name, buf.get_scalar(ctype))

    def _decode_exp_array(self, buf):
        tag = buf.get_u32()
        if tag == TAG_NULL:
            return None
        if tag != TAG_ARRAY:
            raise MarshalError("expected array tag, got %d" % tag)
        length = buf.get_u32()
        return [buf.get_u32() for _ in range(length)]


def exp_length(field, obj):
    """Resolve an Exp annotation to a concrete length."""
    ann = field.annotation(Exp)
    if ann is None:
        return None
    if ann.expr in CONSTANTS:
        return CONSTANTS[ann.expr]
    sibling = getattr(obj, ann.expr, None)
    if sibling is None:
        raise MarshalError(
            "cannot resolve exp(%s) on %s" % (ann.expr, type(obj).__name__)
        )
    return int(sibling)
