"""Extension procedure call (XPC).

XPC provides the five services of section 2.3 -- control transfer,
object transfer, object sharing, synchronization hooks, and the stub
call discipline -- across the two boundaries of the Decaf architecture:

* **kernel <-> user** (driver nucleus <-> driver library/decaf driver):
  a process crossing.  Calling up to user level *sleeps*, so it is
  checked against the execution context: an upcall from interrupt
  context or under a spinlock raises, which is precisely the rule that
  decides the partition.
* **C <-> Java** (driver library <-> decaf driver): a language crossing
  (Jeannie/JNI in the paper).  Cheap, no scheduling, but still pays
  marshaling when arguments are complex.

Every crossing updates counters (Table 3's "User/Kernel Crossings"
column is :attr:`Xpc.kernel_user_crossings`) and charges the virtual
clock per the cost model.
"""

from .domains import DECAF, DRIVER_LIB, KERNEL
from .marshal import MarshalCodec, TO_KERNEL, TO_USER, TransferContext, TypeIds
from .objtracker import KernelObjectTracker, UserObjectTracker


class XpcError(Exception):
    pass


class _KernelSideContext(TransferContext):
    """Decode/encode context for the kernel end of a channel."""

    def __init__(self, channel):
        self._channel = channel

    def resolve(self, identity, struct_cls, type_id):
        tracker = self._channel.kernel_tracker
        obj = tracker.lookup(identity)
        if obj is not None:
            return obj, False
        # A user-born object arriving in the kernel for the first time:
        # allocate the kernel twin and make its address canonical.
        obj = struct_cls()
        tracker.register(obj)
        tracker._by_addr[identity] = obj  # alias the wire identity
        self._channel.canonicalize_user_object(identity, type_id, obj)
        return obj, True

    def register(self, identity, struct_cls, type_id, obj):
        if self._channel.kernel_tracker.lookup(identity) is None:
            self._channel.kernel_tracker._by_addr[identity] = obj

    def handle_of(self, obj):
        return self._channel.handle_of(obj)

    def object_of(self, handle):
        return self._channel.object_of(handle)


class _UserSideContext(TransferContext):
    """Decode/encode context for the user (decaf) end of a channel."""

    def __init__(self, channel):
        self._channel = channel

    def resolve(self, identity, struct_cls, type_id):
        tracker = self._channel.user_tracker
        obj = tracker.xlate_c_to_j(identity, type_id)
        if obj is not None:
            return obj, False
        obj = struct_cls()
        tracker.associate(
            identity, type_id, obj, weak=self._channel.weak_shared_objects
        )
        return obj, True

    def register(self, identity, struct_cls, type_id, obj):
        tracker = self._channel.user_tracker
        if tracker.xlate_c_to_j(identity, type_id) is None:
            tracker.associate(identity, type_id, obj)

    def identity_of(self, obj):
        key = self._channel.user_tracker.xlate_j_to_c(obj)
        if key is not None:
            return key[0]
        return obj.c_addr

    def handle_of(self, obj):
        if isinstance(obj, int):
            return obj
        return self._channel.handle_of(obj)

    def object_of(self, handle):
        # User level keeps opaque kernel pointers as plain integers.
        return handle


class Xpc:
    """Global XPC bookkeeping shared by all channels of one driver."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.kernel_user_crossings = 0   # round trips across the kernel boundary
        self.lang_crossings = 0          # round trips across the C/Java boundary
        self.bytes_marshaled = 0
        self.upcalls = 0
        self.downcalls = 0

    def reset_counters(self):
        self.kernel_user_crossings = 0
        self.lang_crossings = 0
        self.bytes_marshaled = 0
        self.upcalls = 0
        self.downcalls = 0


class XpcChannel:
    """An XPC endpoint pair with its codec, trackers and handle table.

    One channel serves one decaf driver: the same object trackers back
    both the kernel/user boundary and the C/Java boundary, with
    crossings counted separately per boundary.
    """

    def __init__(self, xpc, domains, plan=None, name="xpc",
                 weak_shared_objects=False, single_process=True):
        self.xpc = xpc
        self.domains = domains
        self.codec = MarshalCodec(plan)
        self.name = name
        self.weak_shared_objects = weak_shared_objects
        # The decaf driver and driver library share one process, so the
        # C<->Java control transfer can reuse the calling thread
        # (section 2.3); separate processes would pay a full dispatch.
        self.single_process = single_process
        self.kernel_tracker = KernelObjectTracker()
        self.user_tracker = UserObjectTracker()
        self.kernel_ctx = _KernelSideContext(self)
        self.user_ctx = _UserSideContext(self)
        self._handles = {}
        self._canonical_map = {}

    # -- opaque handles ---------------------------------------------------------

    def handle_of(self, obj):
        if obj is None:
            return 0
        if isinstance(obj, int):
            return obj
        handle = id(obj)
        self._handles[handle] = obj
        return handle

    def object_of(self, handle):
        if handle == 0:
            return None
        return self._handles.get(handle, handle)

    def canonicalize_user_object(self, user_identity, type_id, kernel_obj):
        """Re-key a Java-born object to its new kernel twin's address."""
        tracker = self.user_tracker
        java_obj = tracker.xlate_c_to_j(user_identity, type_id)
        if java_obj is not None:
            tracker.disassociate(java_obj)
            tracker.associate(kernel_obj.c_addr, type_id, java_obj)
        self._canonical_map[user_identity] = kernel_obj.c_addr

    # -- cost charging ------------------------------------------------------------

    def _charge_marshal(self, nbytes, nfields):
        costs = self.xpc.kernel.costs
        self.xpc.bytes_marshaled += nbytes
        self.xpc.kernel.consume(
            int(nbytes * costs.marshal_byte_ns + nfields * costs.marshal_field_ns),
            busy=True,
            category="marshal",
        )

    def _charge_kernel_crossing(self):
        # The crossing itself (syscall, copies) burns CPU; the thread
        # dispatch is mostly *waiting* for the scheduler and the user
        # process -- latency, not CPU -- so it is charged as idle time.
        costs = self.xpc.kernel.costs
        self.xpc.kernel.consume(
            costs.xpc_kernel_user_ns, busy=True, category="xpc"
        )
        self.xpc.kernel.consume(
            costs.xpc_thread_dispatch_ns, busy=False, category="xpc-wait"
        )

    def _charge_lang_crossing(self):
        costs = self.xpc.kernel.costs
        dispatch = 0 if self.single_process else costs.xpc_thread_dispatch_ns
        self.xpc.kernel.consume(
            costs.xpc_lang_ns + dispatch, busy=True, category="xpc"
        )

    # -- marshaling helpers shared by stubs ------------------------------------------

    def _transfer_args(self, args, direction):
        """Marshal (obj, cls) pairs across; returns twin objects."""
        if direction == TO_USER:
            src_ctx, dst_ctx = self.kernel_ctx, self.user_ctx
        else:
            src_ctx, dst_ctx = self.user_ctx, self.kernel_ctx
        before = self.codec.fields_marshaled
        data = self.codec.encode_args(args, direction, ctx=src_ctx)
        twins = self.codec.decode_args(
            data, [cls for _obj, cls in args], direction, ctx=dst_ctx
        )
        self._charge_marshal(len(data), self.codec.fields_marshaled - before)
        return twins

    # -- the four call paths -------------------------------------------------------------

    def upcall(self, func, args=(), extra=None):
        """Kernel -> user: invoke a user-level function.

        ``args`` is a sequence of (kernel_obj_or_None, struct_cls);
        ``extra`` is a tuple of scalars passed through unmarshaled.
        Returns the function's return value (scalars only, per RPC
        semantics).  Sleeps: rejected in atomic context.
        """
        kernel = self.xpc.kernel
        kernel.context.might_sleep("XPC upcall to user level")
        self.xpc.upcalls += 1
        self.xpc.kernel_user_crossings += 1
        self._charge_kernel_crossing()
        twins = self._transfer_args(list(args), TO_USER)
        self.domains.push(DRIVER_LIB)
        try:
            call_args = list(twins) + list(extra or ())
            ret = func(*call_args)
        finally:
            self.domains.pop(DRIVER_LIB)
        # Return path: writable fields propagate back to the kernel.
        self._transfer_args(list(args_back(args, twins)), TO_KERNEL)
        self._charge_kernel_crossing()
        return ret

    def downcall(self, func, args=(), extra=None):
        """User -> kernel: invoke a kernel function from user level."""
        kernel = self.xpc.kernel
        self.xpc.downcalls += 1
        self.xpc.kernel_user_crossings += 1
        self._charge_kernel_crossing()
        twins = self._transfer_args(list(args), TO_KERNEL)
        self.domains.push(KERNEL)
        try:
            call_args = list(twins) + list(extra or ())
            ret = func(*call_args)
        finally:
            self.domains.pop(KERNEL)
        self._transfer_args(list(args_back(args, twins)), TO_USER)
        self._charge_kernel_crossing()
        return ret

    def lang_call(self, func, args=(), extra=None, to_java=True):
        """C <-> Java call through the language boundary (Jeannie/JNI).

        Used between the driver library and the decaf driver when
        arguments are complex; scalar-only calls may bypass XPC
        entirely via :meth:`direct_call`.
        """
        self.xpc.lang_crossings += 1
        self._charge_lang_crossing()
        direction = TO_USER if to_java else TO_KERNEL
        twins = self._transfer_args(list(args), direction)
        domain = DECAF if to_java else DRIVER_LIB
        self.domains.push(domain)
        try:
            call_args = list(twins) + list(extra or ())
            ret = func(*call_args)
        finally:
            self.domains.pop(domain)
        back = TO_KERNEL if to_java else TO_USER
        self._transfer_args(list(args_back(args, twins)), back)
        return ret

    def direct_call(self, func, *scalars):
        """Direct cross-language call for scalar arguments (3.1.1).

        No marshaling, no object tracking; just the language-transition
        cost.  The ablation bench compares this against lang_call.
        """
        self.xpc.lang_crossings += 1
        self._charge_lang_crossing()
        return func(*scalars)


def args_back(args, twins):
    """Pair each twin with its original struct class for the return trip."""
    return [
        (twin, cls)
        for twin, (_obj, cls) in zip(twins, args)
    ]
