"""Extension procedure call (XPC).

XPC provides the five services of section 2.3 -- control transfer,
object transfer, object sharing, synchronization hooks, and the stub
call discipline -- across the two boundaries of the Decaf architecture:

* **kernel <-> user** (driver nucleus <-> driver library/decaf driver):
  a process crossing.  Calling up to user level *sleeps*, so it is
  checked against the execution context: an upcall from interrupt
  context or under a spinlock raises, which is precisely the rule that
  decides the partition.
* **C <-> Java** (driver library <-> decaf driver): a language crossing
  (Jeannie/JNI in the paper).  Cheap, no scheduling, but still pays
  marshaling when arguments are complex.

Every crossing updates counters (Table 3's "User/Kernel Crossings"
column is :attr:`Xpc.kernel_user_crossings`) and charges the virtual
clock per the cost model.

Fast-path mechanics layered on the baseline protocol:

* **Delta return trips** -- the return path of ``upcall`` / ``downcall``
  / ``lang_call`` marshals only fields the callee actually wrote
  (dirty-field tracking on :class:`~repro.core.cstruct.CStruct`).
* **Deferred one-way notifications** -- :meth:`XpcChannel.defer`
  queues fire-and-forget calls (watchdog kicks, period-elapsed ticks)
  and coalesces repeats; the queue is flushed in a *single* crossing at
  the next sync point (any upcall/downcall, or an explicit
  :meth:`flush_deferred`), charged batch-aware costs.
"""

import weakref

from .domains import DECAF, DRIVER_LIB, KERNEL
from .marshal import (
    MarshalCodec, TO_KERNEL, TO_USER, TransferContext, TypeRegistry,
)
from .objtracker import KernelObjectTracker, UserObjectTracker


class XpcError(Exception):
    pass


class DriverFailedError(XpcError):
    """A crossing was aborted or rejected because the driver FAILED.

    Raised at the kernel end of a channel when an *unchecked* exception
    escapes the user-level half (the fault that marked the channel
    failed is ``cause``), and for every subsequent call until the
    channel is reset -- failing fast beats computing with a corrupted
    driver.
    """

    def __init__(self, message, cause=None):
        super().__init__(message)
        self.cause = cause


class FailurePolicy:
    """What the kernel end of a channel does with escaping exceptions.

    ``checked`` exception types are part of the driver's error protocol
    (Decaf's checked exceptions): they propagate to the caller, which
    translates them to errnos.  Anything else is a driver *failure*:
    the channel is marked FAILED and ``on_fault(exc, callsite)`` is
    invoked (the supervisor's hook).  A channel without a policy keeps
    the raw propagate-everything semantics the core tests rely on.
    """

    def __init__(self, checked=(), on_fault=None):
        self.checked = tuple(checked)
        self.on_fault = on_fault


def _callsite(func):
    """Human-readable name of the function crossing the boundary."""
    return (
        getattr(func, "__qualname__", None)
        or getattr(func, "__name__", None)
        or repr(func)
    )


class _KernelSideContext(TransferContext):
    """Decode/encode context for the kernel end of a channel."""

    def __init__(self, channel):
        self._channel = channel

    def resolve(self, identity, struct_cls, type_id):
        tracker = self._channel.kernel_tracker
        obj = tracker.lookup(identity)
        if obj is not None:
            return obj, False
        # A user-born object arriving in the kernel for the first time:
        # allocate the kernel twin and make its address canonical.
        obj = struct_cls()
        tracker.register(obj)
        tracker._by_addr[identity] = obj  # alias the wire identity
        self._channel.canonicalize_user_object(identity, type_id, obj)
        return obj, True

    def register(self, identity, struct_cls, type_id, obj):
        if self._channel.kernel_tracker.lookup(identity) is None:
            self._channel.kernel_tracker._by_addr[identity] = obj

    def handle_of(self, obj):
        return self._channel.handle_of(obj)

    def object_of(self, handle):
        return self._channel.object_of(handle)


class _UserSideContext(TransferContext):
    """Decode/encode context for the user (decaf) end of a channel."""

    def __init__(self, channel):
        self._channel = channel

    def resolve(self, identity, struct_cls, type_id):
        tracker = self._channel.user_tracker
        obj = tracker.xlate_c_to_j(identity, type_id)
        if obj is not None:
            return obj, False
        obj = struct_cls()
        tracker.associate(
            identity, type_id, obj, weak=self._channel.weak_shared_objects
        )
        return obj, True

    def register(self, identity, struct_cls, type_id, obj):
        tracker = self._channel.user_tracker
        if tracker.xlate_c_to_j(identity, type_id) is None:
            tracker.associate(identity, type_id, obj)

    def identity_of(self, obj):
        key = self._channel.user_tracker.xlate_j_to_c(obj)
        if key is not None:
            return key[0]
        return obj.c_addr

    def handle_of(self, obj):
        if isinstance(obj, int):
            return obj
        return self._channel.handle_of(obj)

    def object_of(self, handle):
        # User level keeps opaque kernel pointers as plain integers.
        return handle


class Xpc:
    """Global XPC bookkeeping shared by all channels of one driver."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.kernel_user_crossings = 0   # round trips across the kernel boundary
        self.lang_crossings = 0          # round trips across the C/Java boundary
        self.bytes_marshaled = 0
        self.upcalls = 0
        self.downcalls = 0
        # Deferred-notification accounting (batched one-way crossings).
        self.deferred_calls = 0       # notifications enqueued
        self.deferred_coalesced = 0   # enqueues absorbed by a queued duplicate
        self.deferred_flushes = 0     # batches flushed (crossings paid)
        self.deferred_errors = 0      # notifications whose handler raised
        self.deferred_dropped = 0     # pending notifications dropped at close
        # Failure-boundary accounting.
        self.boundary_faults = 0      # unchecked exceptions contained
        self.failed_calls = 0         # calls rejected fast on a FAILED channel
        self.deferred_error_types = {}  # exception type name -> count
        # kstat: multiple Xpc instances (multi-driver rigs) all register
        # under "xpc"; numeric collisions sum, so the snapshot is the
        # whole-kernel aggregate.
        kernel.kstat.register("xpc", self._kstat)

    def close(self):
        """Drop the kstat registration (driver-instance teardown).

        Without this every probe/remove cycle of a decaf driver leaves
        one more provider behind and kstat snapshots grow without
        bound under hotplug churn.
        """
        self.kernel.kstat.unregister("xpc", self._kstat)

    def _kstat(self):
        return {
            "crossings": self.kernel_user_crossings,
            "lang_crossings": self.lang_crossings,
            "upcalls": self.upcalls,
            "downcalls": self.downcalls,
            "bytes_marshaled": self.bytes_marshaled,
            "deferred_calls": self.deferred_calls,
            "deferred_flushes": self.deferred_flushes,
            "deferred_errors": self.deferred_errors,
            "boundary_faults": self.boundary_faults,
            "failed_calls": self.failed_calls,
        }

    def reset_counters(self):
        """Zero every numeric counter this object carries.

        Introspective on purpose: a counter added to ``__init__`` can
        never be forgotten here (``tests/core/test_xpc_reset.py`` pins
        the contract down).  Dict-valued counters are cleared.
        """
        for attr, value in vars(self).items():
            if attr.startswith("_") or attr == "kernel":
                continue
            if isinstance(value, dict):
                value.clear()
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            setattr(self, attr, 0)


class XpcChannel:
    """An XPC endpoint pair with its codec, trackers and handle table.

    One channel serves one decaf driver: the same object trackers back
    both the kernel/user boundary and the C/Java boundary, with
    crossings counted separately per boundary.  Each channel owns a
    private :class:`TypeRegistry`, so wire type ids never leak between
    rigs.
    """

    #: Installed as ``corrupt_hook`` on every new channel (normally
    #: None).  Seam for probe-time payload attacks; see __init__.
    default_corrupt_hook = None

    def __init__(self, xpc, domains, plan=None, name="xpc",
                 weak_shared_objects=False, single_process=True):
        self.xpc = xpc
        self.domains = domains
        self.type_ids = TypeRegistry()
        self.codec = MarshalCodec(plan, type_ids=self.type_ids)
        self.name = name
        self.weak_shared_objects = weak_shared_objects
        # The decaf driver and driver library share one process, so the
        # C<->Java control transfer can reuse the calling thread
        # (section 2.3); separate processes would pay a full dispatch.
        self.single_process = single_process
        self.kernel_tracker = KernelObjectTracker()
        self.user_tracker = UserObjectTracker()
        self.kernel_ctx = _KernelSideContext(self)
        self.user_ctx = _UserSideContext(self)
        # Opaque-handle table: weak values, so a kernel object that dies
        # does not linger for the life of the rig; objects that cannot
        # be weakly referenced (plain lists/dicts) fall back to a strong
        # table released on close().
        self._handles = weakref.WeakValueDictionary()
        self._strong_handles = {}
        self._canonical_map = {}
        self._deferred = []
        # Virtual timestamp of the oldest queued notification; None
        # when the queue is empty.  The xpc-pending watchdog reads it.
        self._deferred_since_ns = None
        self._flushing = False
        self.closed = False
        health = xpc.kernel.health
        if health is not None:
            health.watch_channel(self)
        # Failure boundary (opt-in): DecafPlumbing installs a
        # FailurePolicy; a bare channel propagates everything.
        self.failure_policy = None
        self.failed = False
        self.failure = None           # (exc, callsite, ns) of first fault
        self.last_deferred_error = None
        # Fault-injection hooks (repro.faults): inject_hook(kind,
        # callsite) may raise before user code runs; corrupt_hook(data,
        # direction) may mangle a marshaled payload in flight.  The
        # class-level default lets repro.explore's adversary attack
        # *probe-time* crossings -- the channel is constructed mid-insmod,
        # before any caller can reach the instance to install a hook.
        self.inject_hook = None
        self.corrupt_hook = XpcChannel.default_corrupt_hook
        # Stats of the most recent _transfer_args call:
        # (bytes, fields, tracker_lookups, tracker_hits, delta_saved).
        # Call sites that trace read it immediately after each transfer.
        self.last_transfer = (0, 0, 0, 0, 0)

    # -- opaque handles ---------------------------------------------------------

    def handle_of(self, obj):
        if obj is None:
            return 0
        if isinstance(obj, int):
            return obj
        handle = id(obj)
        try:
            self._handles[handle] = obj
        except TypeError:
            self._strong_handles[handle] = obj
        return handle

    def object_of(self, handle):
        if handle == 0:
            return None
        obj = self._handles.get(handle)
        if obj is None:
            obj = self._strong_handles.get(handle)
        return obj if obj is not None else handle

    def release_handles(self):
        """Drop every opaque-handle mapping (channel teardown)."""
        self._handles.clear()
        self._strong_handles.clear()

    def handle_count(self):
        return len(self._handles) + len(self._strong_handles)

    def close(self):
        """Tear the channel down: drop pending notifications, release
        opaque handles and canonical aliases.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        health = self.xpc.kernel.health
        if health is not None:
            health.unwatch_channel(self)
        if self._deferred:
            self.xpc.deferred_dropped += len(self._deferred)
            self._deferred.clear()
        self._deferred_since_ns = None
        self.release_handles()
        self._canonical_map.clear()
        # Associations made by this driver instance must not survive it:
        # a reloaded driver's objects can land at the same simulated
        # addresses and alias stale entries.
        self.user_tracker.clear()

    def reset_user_side(self):
        """Reset the user end of a FAILED channel for a driver restart.

        Everything the dead user-level half owned is dropped: pending
        notifications (counted as dropped), opaque handles, canonical
        aliases, and the user object tracker (epoch-bumped, so GC of
        the dead instance's objects cannot release the new instance's
        twins).  Kernel-side state (the kernel tracker, counters) stays:
        kernel objects survive the restart.
        """
        if self._deferred:
            self.xpc.deferred_dropped += len(self._deferred)
            self._deferred.clear()
        self._deferred_since_ns = None
        self.release_handles()
        self._canonical_map.clear()
        self.user_tracker.clear()
        self.failed = False
        self.failure = None

    # -- failure containment ----------------------------------------------------

    def _contain(self, exc, callsite):
        """Decide whether ``exc`` escaping ``callsite`` is a driver fault.

        Checked exceptions (per the installed policy) and exceptions on
        a policy-free channel propagate -- return False.  Anything else
        marks the channel FAILED, counts the fault, and notifies the
        policy's fault hook; the caller then raises DriverFailedError.
        """
        policy = self.failure_policy
        if policy is None or isinstance(exc, policy.checked):
            return False
        if isinstance(exc, DriverFailedError):
            # Already accounted for by the crossing that contained it;
            # let it propagate unchanged through nested calls.
            return False
        kernel = self.xpc.kernel
        self.xpc.boundary_faults += 1
        if not self.failed:
            self.failed = True
            self.failure = (exc, callsite, kernel.clock.now_ns)
        kernel.printk(
            "xpc %s: unchecked %s escaped %s: %s -- driver FAILED"
            % (self.name, type(exc).__name__, callsite, exc),
            level="err",
        )
        tracer = kernel.tracer
        if tracer is not None:
            tracer.instant("xpc.fault", {
                "driver": self.name, "callsite": callsite,
                "exc": type(exc).__name__,
            })
            tracer.metrics.inc("xpc.boundary_faults|%s" % self.name)
        health = kernel.health
        if health is not None:
            health.on_boundary_fault(self.name, callsite, exc)
        if policy.on_fault is not None:
            policy.on_fault(exc, callsite)
        return True

    def _record_deferred_error(self, func, exc):
        """Keep the evidence when a deferred handler raises (satellite:
        the old path swallowed type and traceback entirely)."""
        self.last_deferred_error = exc
        name = type(exc).__name__
        types = self.xpc.deferred_error_types
        types[name] = types.get(name, 0) + 1
        kernel = self.xpc.kernel
        kernel.printk(
            "xpc %s: deferred notification %s raised %s: %s"
            % (self.name, _callsite(func), name, exc),
            level="warn",
        )
        tracer = kernel.tracer
        if tracer is not None:
            tracer.instant("xpc.deferred_error", {
                "driver": self.name, "callsite": _callsite(func),
                "exc": name,
            })
            tracer.metrics.inc("deferred_error_types|%s" % name)

    def _fail_fast(self, kind, func):
        """Reject a call on a FAILED channel without crossing."""
        self.xpc.failed_calls += 1
        exc, callsite, _ns = self.failure or (None, "?", 0)
        raise DriverFailedError(
            "xpc %s: %s %s rejected -- driver FAILED (first fault: %s at %s)"
            % (self.name, kind, _callsite(func),
               type(exc).__name__ if exc is not None else "?", callsite),
            cause=exc,
        )

    def canonicalize_user_object(self, user_identity, type_id, kernel_obj):
        """Re-key a Java-born object to its new kernel twin's address."""
        tracker = self.user_tracker
        java_obj = tracker.xlate_c_to_j(user_identity, type_id)
        if java_obj is not None:
            tracker.disassociate(java_obj)
            tracker.associate(kernel_obj.c_addr, type_id, java_obj)
        self._canonical_map[user_identity] = kernel_obj.c_addr

    # -- cost charging ------------------------------------------------------------

    def _charge_marshal(self, nbytes, nfields):
        costs = self.xpc.kernel.costs
        self.xpc.bytes_marshaled += nbytes
        self.xpc.kernel.consume(
            int(nbytes * costs.marshal_byte_ns + nfields * costs.marshal_field_ns),
            busy=True,
            category="marshal",
        )

    def _charge_kernel_crossing(self):
        # The crossing itself (syscall, copies) burns CPU; the thread
        # dispatch is mostly *waiting* for the scheduler and the user
        # process -- latency, not CPU -- so it is charged as idle time.
        costs = self.xpc.kernel.costs
        self.xpc.kernel.consume(
            costs.xpc_kernel_user_ns, busy=True, category="xpc"
        )
        self.xpc.kernel.consume(
            costs.xpc_thread_dispatch_ns, busy=False, category="xpc-wait"
        )

    def _charge_batch_crossing(self, nitems):
        # One crossing carries the whole batch: full crossing cost for
        # the first item, a marginal per-item cost for the rest, one
        # thread dispatch total.
        costs = self.xpc.kernel.costs
        self.xpc.kernel.consume(
            costs.xpc_kernel_user_ns
            + (nitems - 1) * costs.xpc_batch_item_ns,
            busy=True, category="xpc",
        )
        self.xpc.kernel.consume(
            costs.xpc_thread_dispatch_ns, busy=False, category="xpc-wait"
        )

    def _charge_lang_crossing(self):
        costs = self.xpc.kernel.costs
        dispatch = 0 if self.single_process else costs.xpc_thread_dispatch_ns
        self.xpc.kernel.consume(
            costs.xpc_lang_ns + dispatch, busy=True, category="xpc"
        )

    # -- marshaling helpers shared by stubs ------------------------------------------

    def _transfer_args(self, args, direction, delta=False):
        """Marshal (obj, cls) pairs across; returns twin objects.

        ``delta=True`` (return trips) copies only fields carrying dirty
        marks.  Either way, every object materialized on the receiving
        side is marked clean afterwards, so its dirty set accumulates
        exactly the writes made *since* this transfer.
        """
        if direction == TO_USER:
            src_ctx, dst_ctx = self.kernel_ctx, self.user_ctx
        else:
            src_ctx, dst_ctx = self.user_ctx, self.kernel_ctx
        kt, ut, codec = self.kernel_tracker, self.user_tracker, self.codec
        lookups0 = kt.lookups + ut.lookups
        hits0 = kt.hits + ut.hits
        skipped0 = codec.delta_fields_skipped
        data, nfields = codec.encode_args(
            args, direction, ctx=src_ctx, delta=delta
        )
        if self.corrupt_hook is not None:
            data = self.corrupt_hook(data, direction)
        twins = codec.decode_args(
            data, [cls for _obj, cls in args], direction, ctx=dst_ctx,
            delta=delta,
        )
        self.last_transfer = (
            len(data),
            nfields,
            kt.lookups + ut.lookups - lookups0,
            kt.hits + ut.hits - hits0,
            codec.delta_fields_skipped - skipped0,
        )
        self._charge_marshal(len(data), nfields)
        for obj in self.codec.last_decoded_objects:
            clear = getattr(obj, "clear_dirty", None)
            if clear is not None:
                clear()
        return twins

    # -- deferred one-way notifications ---------------------------------------------

    def defer(self, func, args=(), extra=None):
        """Queue a fire-and-forget kernel -> user notification.

        Safe from any context (including interrupt handlers and under
        spinlocks): nothing crosses now.  A queued notification for the
        same ``func`` is *replaced* (coalesced) -- the semantics of a
        watchdog kick or period-elapsed tick, where only the latest
        matters.  The queue drains in one batched crossing at the next
        sync point.
        """
        self.xpc.deferred_calls += 1
        tracer = self.xpc.kernel.tracer
        if tracer is not None:
            tracer.instant(
                "xpc.defer",
                {"driver": self.name, "callsite": _callsite(func)},
            )
        # Equality, not identity: a bound method (nucleus.decaf.tick)
        # is a fresh object on every attribute access, but compares
        # equal to itself; distinct lambdas stay distinct.
        for i, (qfunc, _qargs, _qextra) in enumerate(self._deferred):
            if qfunc == func:
                self._deferred[i] = (func, list(args), extra)
                self.xpc.deferred_coalesced += 1
                return
        if not self._deferred:
            self._deferred_since_ns = self.xpc.kernel.clock.now_ns
        self._deferred.append((func, list(args), extra))

    def pending_deferred(self):
        return len(self._deferred)

    def flush_deferred(self):
        """Drain the deferred queue in one batched crossing.

        Called implicitly at every upcall/downcall (sync points) and
        explicitly by nuclei at sleep-capable points.  Checked handler
        exceptions are recorded and swallowed -- one-way notifications
        have no caller to propagate to.  Unchecked ones (under a
        failure policy) mark the driver FAILED and drop the rest of the
        batch.  Returns the batch size.
        """
        if not self._deferred or self._flushing:
            return 0
        if self.failed:
            # The user-level half is dead; its notifications go nowhere.
            self.xpc.deferred_dropped += len(self._deferred)
            self._deferred.clear()
            self._deferred_since_ns = None
            return 0
        kernel = self.xpc.kernel
        kernel.context.might_sleep("XPC deferred-notification flush")
        # Reentrancy guard: a notification handler may downcall, and
        # downcall entry is itself a sync point.
        self._flushing = True
        tracer = kernel.tracer
        start_ns = kernel.clock.now_ns if tracer is not None else 0
        transfers = [] if tracer is not None else None
        callsites = [] if tracer is not None else None
        try:
            batch = self._deferred
            self._deferred = []
            self._deferred_since_ns = None
            self.xpc.deferred_flushes += 1
            self.xpc.kernel_user_crossings += 1
            self._charge_batch_crossing(len(batch))
            for index, (func, args, extra) in enumerate(batch):
                try:
                    if self.inject_hook is not None:
                        self.inject_hook("notify", _callsite(func))
                    twins = self._transfer_args(list(args), TO_USER)
                    if transfers is not None:
                        # Read immediately: a handler that downcalls
                        # would overwrite last_transfer.
                        transfers.append(self.last_transfer)
                        callsites.append(_callsite(func))
                    self.domains.push(DRIVER_LIB)
                    try:
                        func(*(list(twins) + list(extra or ())))
                    finally:
                        self.domains.pop(DRIVER_LIB)
                except Exception as exc:
                    self.xpc.deferred_errors += 1
                    self._record_deferred_error(func, exc)
                    if self._contain(exc, _callsite(func)):
                        # The driver just FAILED; the batch's remaining
                        # notifications belong to the dead instance.
                        remaining = len(batch) - index - 1
                        if remaining:
                            self.xpc.deferred_dropped += remaining
                        break
            if tracer is not None:
                tracer.xpc_span(
                    "xpc.flush", start_ns, self.name, "defer-batch",
                    transfers,
                    extra_args={"items": len(batch), "callsites": callsites},
                )
            return len(batch)
        finally:
            self._flushing = False

    def _transfer_contained(self, args, direction, delta, func):
        """A downcall-path transfer: a malformed payload is a driver fault.

        The marshaled bytes on this path come from the user-level half;
        a decode failure (truncated buffer, forged length, bad tag --
        anything a compromised user half can put on the wire) must never
        surface as a raw kernel-side exception.  Under a failure policy
        it is contained exactly like an unchecked exception escaping an
        upcall: channel FAILED, supervisor notified, DriverFailedError
        to the caller.  A policy-free channel keeps raw propagation.
        """
        try:
            return self._transfer_args(args, direction, delta=delta)
        except Exception as exc:
            if self._contain(exc, _callsite(func)):
                raise DriverFailedError(
                    "xpc %s: malformed payload in downcall %s"
                    % (self.name, _callsite(func)),
                    cause=exc,
                ) from exc
            raise

    # -- the four call paths -------------------------------------------------------------

    def upcall(self, func, args=(), extra=None):
        """Kernel -> user: invoke a user-level function.

        ``args`` is a sequence of (kernel_obj_or_None, struct_cls);
        ``extra`` is a tuple of scalars passed through unmarshaled.
        Returns the function's return value (scalars only, per RPC
        semantics).  Sleeps: rejected in atomic context.
        """
        kernel = self.xpc.kernel
        kernel.context.might_sleep("XPC upcall to user level")
        if self.failed:
            self._fail_fast("upcall", func)
        self.xpc.upcalls += 1
        self.xpc.kernel_user_crossings += 1
        tracer = kernel.tracer
        start_ns = kernel.clock.now_ns if tracer is not None else 0
        self._charge_kernel_crossing()
        # Everything from the forward transfer through the delta return
        # trip runs on behalf of the user-level half: an unchecked
        # exception anywhere in it (including a payload that fails to
        # decode) is a driver failure, not a kernel one.
        prof = kernel.profiler
        if prof is not None:
            prof.push("xpc:%s" % self.name)
        try:
            twins = self._transfer_args(list(args), TO_USER)
            fwd = self.last_transfer
            self.domains.push(DRIVER_LIB)
            try:
                if self.inject_hook is not None:
                    self.inject_hook("upcall", _callsite(func))
                call_args = list(twins) + list(extra or ())
                ret = func(*call_args)
            finally:
                self.domains.pop(DRIVER_LIB)
            # Return path: only fields the user level wrote propagate back.
            self._transfer_args(list(args_back(args, twins)), TO_KERNEL,
                                delta=True)
        except Exception as exc:
            if self._contain(exc, _callsite(func)):
                raise DriverFailedError(
                    "xpc %s: driver failed during upcall %s"
                    % (self.name, _callsite(func)),
                    cause=exc,
                ) from exc
            raise
        finally:
            if prof is not None:
                prof.pop()
        self._charge_kernel_crossing()
        if tracer is not None:
            # Before flush_deferred: the flush is its own crossing and
            # gets its own span, not a nested slice of this one.
            tracer.xpc_span("xpc.upcall", start_ns, self.name,
                            _callsite(func), (fwd, self.last_transfer))
        # Sync point: drain queued notifications now that a crossing
        # has completed anyway (never *before* the call -- that would
        # delay it behind the batch).
        self.flush_deferred()
        return ret

    def downcall(self, func, args=(), extra=None):
        """User -> kernel: invoke a kernel function from user level."""
        kernel = self.xpc.kernel
        if self.failed:
            self._fail_fast("downcall", func)
        if self.inject_hook is not None:
            # Entry is the injection point: the fault models the
            # crossing itself failing, before any kernel state is
            # touched.  The raise unwinds into the user-level driver
            # and is contained by the surrounding upcall/notify
            # dispatch, like any other driver failure.
            self.inject_hook("downcall", _callsite(func))
        self.xpc.downcalls += 1
        self.xpc.kernel_user_crossings += 1
        tracer = kernel.tracer
        start_ns = kernel.clock.now_ns if tracer is not None else 0
        self._charge_kernel_crossing()
        twins = self._transfer_contained(list(args), TO_KERNEL, False, func)
        fwd = self.last_transfer
        self.domains.push(KERNEL)
        try:
            call_args = list(twins) + list(extra or ())
            ret = func(*call_args)
        finally:
            self.domains.pop(KERNEL)
        self._transfer_contained(list(args_back(args, twins)), TO_USER, True,
                                 func)
        self._charge_kernel_crossing()
        if tracer is not None:
            tracer.xpc_span("xpc.downcall", start_ns, self.name,
                            _callsite(func), (fwd, self.last_transfer))
        self.flush_deferred()  # sync point (see upcall)
        return ret

    def lang_call(self, func, args=(), extra=None, to_java=True):
        """C <-> Java call through the language boundary (Jeannie/JNI).

        Used between the driver library and the decaf driver when
        arguments are complex; scalar-only calls may bypass XPC
        entirely via :meth:`direct_call`.
        """
        if self.failed:
            self._fail_fast("lang_call", func)
        self.xpc.lang_crossings += 1
        tracer = self.xpc.kernel.tracer
        start_ns = self.xpc.kernel.clock.now_ns if tracer is not None else 0
        self._charge_lang_crossing()
        direction = TO_USER if to_java else TO_KERNEL
        twins = self._transfer_args(list(args), direction)
        fwd = self.last_transfer
        domain = DECAF if to_java else DRIVER_LIB
        self.domains.push(domain)
        try:
            call_args = list(twins) + list(extra or ())
            ret = func(*call_args)
        finally:
            self.domains.pop(domain)
        back = TO_KERNEL if to_java else TO_USER
        self._transfer_args(list(args_back(args, twins)), back, delta=True)
        if tracer is not None:
            tracer.xpc_span("xpc.lang", start_ns, self.name,
                            _callsite(func), (fwd, self.last_transfer),
                            cat="xpc.lang",
                            extra_args={"to_java": to_java})
        return ret

    def direct_call(self, func, *scalars):
        """Direct cross-language call for scalar arguments (3.1.1).

        No marshaling, no object tracking; just the language-transition
        cost.  The ablation bench compares this against lang_call.
        """
        self.xpc.lang_crossings += 1
        tracer = self.xpc.kernel.tracer
        if tracer is None:
            self._charge_lang_crossing()
            return func(*scalars)
        start_ns = self.xpc.kernel.clock.now_ns
        self._charge_lang_crossing()
        ret = func(*scalars)
        tracer.xpc_span("xpc.direct", start_ns, self.name, _callsite(func),
                        (), cat="xpc.lang")
        return ret


def args_back(args, twins):
    """Pair each twin with its original struct class for the return trip."""
    return [
        (twin, cls)
        for twin, (_obj, cls) in zip(twins, args)
    ]
