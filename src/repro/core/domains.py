"""Execution domains.

A decaf driver executes across three protection/language domains:

* ``KERNEL`` -- the driver nucleus, C, kernel address space;
* ``DRIVER_LIB`` -- user-level C: XPC endpoints, helper routines, and the
  staging ground for functions not yet converted to Java;
* ``DECAF`` -- the managed-language driver itself.

The :class:`DomainManager` tracks which domain is executing (a stack,
since XPC nests: kernel -> decaf -> downcall -> kernel) and counts
transitions.  It is the authority the XPC layer and combolocks consult.
"""

KERNEL = "kernel"
DRIVER_LIB = "driver-lib"
DECAF = "decaf"

_ALL = (KERNEL, DRIVER_LIB, DECAF)

USER_DOMAINS = (DRIVER_LIB, DECAF)


class DomainManager:
    def __init__(self, initial=KERNEL):
        self._stack = [initial]
        self.transitions = 0

    @property
    def current(self):
        return self._stack[-1]

    @property
    def depth(self):
        return len(self._stack)

    def in_kernel(self):
        return self.current == KERNEL

    def in_user(self):
        return self.current in USER_DOMAINS

    def push(self, domain):
        assert domain in _ALL, domain
        self._stack.append(domain)
        self.transitions += 1

    def pop(self, expected=None):
        domain = self._stack.pop()
        if expected is not None:
            assert domain == expected, (domain, expected)
        assert self._stack, "popped the base domain"
        return domain

    class _Entered:
        def __init__(self, mgr, domain):
            self._mgr = mgr
            self._domain = domain

        def __enter__(self):
            self._mgr.push(self._domain)
            return self._mgr

        def __exit__(self, *exc):
            self._mgr.pop(self._domain)
            return False

    def entered(self, domain):
        """Context manager: execute a block in ``domain``."""
        return DomainManager._Entered(self, domain)
