"""C-layout structure definitions with marshaling annotations.

Legacy drivers declare their data structures as :class:`CStruct`
subclasses with a ``FIELDS`` table, mirroring how the original C drivers
declare ``struct e1000_adapter`` etc.  Each field has a C type; pointer
and array fields may carry the annotations the paper's DriverSlicer needs
(section 3.2): ``Exp("PCI_LEN")`` marks a pointer as pointing to an array
whose length is given by an expression, ``Opaque()`` marks kernel-private
pointers that must never be marshaled.

The type layer provides ``sizeof`` (C layout sizes, used by the decaf
runtime's sizeof helper), default construction, and the metadata the XDR
generator (:mod:`repro.slicer.xdrgen`) and marshaling codecs
(:mod:`repro.core.marshal`) are driven by.
"""

from ..kernel.errors import SimulationError


class CType:
    """Base for scalar C types."""

    name = "ctype"
    size = 4
    signed = False

    def __repr__(self):
        return self.name

    def default(self):
        return 0

    def xdr_type(self):
        """The XDR spec type this C type maps to (section 3.2.2)."""
        return {
            ("u", 1): "unsigned char",
            ("u", 2): "unsigned short",
            ("u", 4): "unsigned int",
            ("u", 8): "unsigned hyper",
            ("i", 1): "char",
            ("i", 2): "short",
            ("i", 4): "int",
            ("i", 8): "hyper",
        }[("i" if self.signed else "u", self.size)]

    def clamp(self, value):
        value &= self._mask
        if self.signed and value >= self._sign_threshold:
            value -= self._wrap
        return value


# Default mask set for the 4-byte base CType.
CType._mask = (1 << 32) - 1
CType._sign_threshold = 1 << 31
CType._wrap = 1 << 32


def _scalar(type_name, size, signed):
    bits = size * 8
    cls = type(type_name, (CType,), {
        "name": type_name, "size": size, "signed": signed,
        "_mask": (1 << bits) - 1,
        "_sign_threshold": 1 << (bits - 1),
        "_wrap": 1 << bits,
    })
    return cls()


U8 = _scalar("u8", 1, False)
U16 = _scalar("u16", 2, False)
U32 = _scalar("u32", 4, False)
U64 = _scalar("u64", 8, False)
I8 = _scalar("s8", 1, True)
I16 = _scalar("s16", 2, True)
I32 = _scalar("int", 4, True)
I64 = _scalar("s64", 8, True)


class Str:
    """A fixed-size char array holding a C string."""

    def __init__(self, length):
        self.length = length
        self.name = "char[%d]" % length
        self.size = length

    def __repr__(self):
        return self.name

    def default(self):
        return ""

    def xdr_type(self):
        return "opaque[%d]" % self.length


class Array:
    """A fixed-length inline array of a scalar element type."""

    def __init__(self, elem, length):
        self.elem = elem
        self.length = length
        self.name = "%s[%s]" % (elem.name, length)

    def __repr__(self):
        return self.name

    @property
    def size(self):
        return self.elem.size * self.length

    def default(self):
        return [self.elem.default()] * self.length

    def xdr_type(self):
        return "%s[%d]" % (self.elem.xdr_type(), self.length)


class Struct:
    """An embedded (inline) struct field.

    In C the embedded struct shares the address of its offset within the
    outer struct -- when it is the *first* member, both have the same
    address, which is the aliasing case the user-level object tracker
    must disambiguate (section 3.1.2).
    """

    def __init__(self, struct_cls):
        self.struct_cls = struct_cls
        self.name = "struct %s" % struct_cls.__name__

    def __repr__(self):
        return self.name

    @property
    def size(self):
        return self.struct_cls.sizeof()

    def default(self):
        return self.struct_cls()

    def xdr_type(self):
        return "struct %s" % self.struct_cls.__name__


class Ptr:
    """A pointer field.

    ``target`` is a CStruct subclass, a scalar CType (pointer to array,
    requires an ``Exp`` length annotation), or a string name resolved
    through the struct registry (for forward/recursive references such as
    linked lists).
    """

    size = 8

    def __init__(self, target):
        self.target = target

    @property
    def name(self):
        target = self.target
        if isinstance(target, str):
            return "struct %s *" % target
        if isinstance(target, type) and issubclass(target, CStruct):
            return "struct %s *" % target.__name__
        return "%s *" % target.name

    def __repr__(self):
        return self.name

    def default(self):
        return None

    def resolve(self):
        if isinstance(self.target, str):
            return StructRegistry.get(self.target)
        return self.target


# -- field annotations ---------------------------------------------------------


class Annotation:
    pass


class Exp(Annotation):
    """Pointer-length annotation: ``__attribute__((exp(EXPR)))``.

    EXPR is either an integer constant name resolved through
    :data:`CONSTANTS` or the name of a sibling field holding the length.
    """

    def __init__(self, expr):
        self.expr = expr

    def __repr__(self):
        return "exp(%s)" % self.expr


class Opaque(Annotation):
    """Kernel-private pointer: never marshaled, passed as a handle."""

    def __repr__(self):
        return "opaque"


class Null(Annotation):
    """Pointer that must be marshaled as NULL (dropped at the boundary)."""

    def __repr__(self):
        return "null"


# Named constants usable in Exp() expressions (drivers register more).
CONSTANTS = {
    "PCI_LEN": 64,
    "ETH_ALEN": 6,
}


class Field:
    __slots__ = ("name", "ctype", "annotations", "offset")

    def __init__(self, name, ctype, annotations, offset):
        self.name = name
        self.ctype = ctype
        self.annotations = tuple(annotations)
        self.offset = offset

    def annotation(self, kind):
        for ann in self.annotations:
            if isinstance(ann, kind):
                return ann
        return None

    def is_pointer(self):
        return isinstance(self.ctype, Ptr)

    def __repr__(self):
        return "<Field %s: %r>" % (self.name, self.ctype)


class StructRegistry:
    """Global name -> CStruct-subclass registry (for Ptr("name") refs)."""

    _structs = {}

    @classmethod
    def register(cls, struct_cls):
        cls._structs[struct_cls.__name__] = struct_cls

    @classmethod
    def get(cls, name):
        try:
            return cls._structs[name]
        except KeyError:
            raise SimulationError("unknown struct %r" % name) from None

    @classmethod
    def all_structs(cls):
        return dict(cls._structs)


class CStructMeta(type):
    def __new__(mcls, name, bases, ns):
        cls = super().__new__(mcls, name, bases, ns)
        raw_fields = ns.get("FIELDS", None)
        fields = []
        offset = 0
        if raw_fields:
            for spec in raw_fields:
                fname, ctype = spec[0], spec[1]
                annotations = spec[2:]
                field = Field(fname, ctype, annotations, offset)
                offset += getattr(ctype, "size", 8)
                fields.append(field)
        cls._fields = tuple(fields)
        cls._size = offset
        cls._fields_by_name = {f.name: f for f in fields}
        # Instance-construction template: defaults that are immutable
        # (scalars, strings, NULL pointers) are shared via one dict
        # update; only embedded structs and arrays need a fresh value
        # per instance.  Twin allocation sits on the XPC decode hot
        # path, so __init__ avoids per-field default()/setattr calls.
        simple = {}
        per_instance = []
        for f in fields:
            if isinstance(f.ctype, (Struct, Array)):
                per_instance.append(f)
            else:
                simple[f.name] = f.ctype.default()
        cls._simple_defaults = simple
        cls._per_instance_fields = tuple(per_instance)
        if raw_fields is not None:
            StructRegistry.register(cls)
        return cls


class CStruct(metaclass=CStructMeta):
    """Base class for C-layout structures.

    Instances behave like plain attribute bags with typed defaults; the
    metadata lives on the class.  An instance belongs to the domain whose
    heap allocated it (set by the domain manager); its identity in C
    domains is a synthetic address.
    """

    FIELDS = None
    _next_addr = 0x4000_0000

    def __init__(self, **kwargs):
        CStruct._next_addr += 0x10000
        d = self.__dict__
        # Dirty-field tracking for XPC delta marshaling: every public
        # attribute write is recorded so a return trip can copy only
        # fields actually mutated.  A fresh instance starts fully dirty
        # (all fields marked) -- a new object reaching the boundary
        # must cross in full.
        d["_dirty_fields"] = set(self._fields_by_name)
        d["_c_addr"] = CStruct._next_addr
        d["_domain"] = None
        d.update(self._simple_defaults)
        for field in self._per_instance_fields:
            value = field.ctype.default()
            # An embedded struct shares its parent's storage in C: its
            # address is parent + offset.  A first member therefore has
            # the SAME address as the outer struct -- the aliasing case
            # the user-level object tracker disambiguates by type.
            if isinstance(field.ctype, Struct):
                value._c_addr = d["_c_addr"] + field.offset
            d[field.name] = value
        for key, value in kwargs.items():
            if key not in self._fields_by_name:
                raise AttributeError(
                    "%s has no field %r" % (type(self).__name__, key)
                )
            setattr(self, key, value)

    @classmethod
    def sizeof(cls):
        """C layout size (packed; the decaf runtime's sizeof helper)."""
        return cls._size

    @classmethod
    def fields(cls):
        return cls._fields

    @classmethod
    def field(cls, name):
        return cls._fields_by_name[name]

    @property
    def c_addr(self):
        return self._c_addr

    def __setattr__(self, name, value, _oset=object.__setattr__):
        _oset(self, name, value)
        if name[0] != "_":
            try:
                self._dirty_fields.add(name)
            except AttributeError:
                pass  # writes before __init__ set up tracking

    # -- dirty-field tracking (XPC delta marshaling) -----------------------------

    def dirty_fields(self):
        """Names of fields written since the last :meth:`clear_dirty`."""
        return self._dirty_fields

    def clear_dirty(self):
        """Mark the object clean (done after each XPC transfer, so the
        next return trip carries only fields written since)."""
        self._dirty_fields.clear()

    def __repr__(self):
        return "<%s @%#x>" % (type(self).__name__, self._c_addr)
