"""Table 4: patches applied to E1000 (2.6.18.1 -> 2.6.27).

Paper:

    Category                 Lines of Code Changed
    Driver nucleus           381
    Decaf driver             4690
    User/kernel interface    23

Applied as 320 patches in two batches (before/after 2.6.22).  The
bench replays our synthetic series, applies the interface patches for
real (struct extension + marshaling-plan regeneration with
verification), and prints the same rows.
"""

from repro.core.marshal import MarshalCodec, TO_USER
from repro.evolution import apply_patch_series, build_e1000_patch_series

PAPER = {
    "Driver nucleus": 381,
    "Decaf driver": 4690,
    "User/kernel interface": 23,
}


def run_evolution():
    patches = build_e1000_patch_series()
    batch1, _plan1 = apply_patch_series(patches, batches=(1,))
    full, plan = apply_patch_series(patches)
    return patches, batch1, full, plan


def test_table4_evolution(benchmark, table_printer):
    patches, batch1, full, plan = benchmark.pedantic(
        run_evolution, iterations=1, rounds=1)

    rows = []
    ours = full.table4_rows()
    for category, paper_lines in PAPER.items():
        rows.append((category, paper_lines, ours[category]))
    table_printer(
        "Table 4: E1000 evolution, lines changed (paper vs reproduction)",
        ["Category", "Paper", "Reproduction"],
        rows,
    )

    assert full.patches_applied == 320
    # Vast majority of change lands at user level.
    assert ours["Decaf driver"] > 10 * ours["Driver nucleus"]
    assert ours["Driver nucleus"] > ours["User/kernel interface"]
    # One annotation per interface change (paper: one DECAF_XVAR per
    # new field).
    assert full.annotations_added == full.interface_patches

    # The interface patches actually work: every added field marshals
    # through the regenerated plan.
    codec = MarshalCodec(plan)
    for new_cls, field_name, _mode in full.new_fields:
        obj = new_cls(**{field_name: 0x55})
        out = codec.decode(codec.encode(obj, new_cls, TO_USER),
                           new_cls, TO_USER)
        assert getattr(out, field_name) == 0x55, field_name

    # Two-batch application composes to the full series.
    assert batch1.patches_applied < full.patches_applied
    benchmark.extra_info.update(ours)
