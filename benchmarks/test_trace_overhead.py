"""Trace overhead: the disabled path must cost (almost) nothing.

Two measurements on the hottest workload (netperf-recv over the NAPI
datapath):

1. **Disabled-path guard cost** -- the tracepoints compile down to
   ``tracer = kernel.tracer`` / ``if tracer is not None`` at every
   instrumented site.  A tight loop measures that exact guard's
   per-check wall cost; multiplied by a conservative bound on guard
   executions for the run, it must stay under 3% of the run's wall
   time.  This is the asserted contract: it holds independent of
   machine-to-machine wall-clock noise.

2. **Disabled vs enabled wall clock** -- interleaved best-of-N runs
   with tracing off and on, reported (not asserted: the *enabled* path
   is allowed to cost what it costs).

Results merge into ``BENCH_trace.json``.
"""

import gc
import json
import os
import time

from repro.trace import Tracer
from repro.workloads.netperf import netperf_recv
from repro.workloads.rigs import make_e1000_rig

RESULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_trace.json")

DURATION_S = float(os.environ.get("TRACE_BENCH_SECONDS", "0.1"))

# Overhead ceiling for the disabled path, per the subsystem contract.
MAX_DISABLED_OVERHEAD = 0.03

# Each traced operation may execute a handful of guards (e.g. an XPC
# round trip checks in upcall, twice in locks, once in flush).  Bound
# guards-per-event generously.
GUARDS_PER_EVENT = 4


def _recv_once(trace=None):
    # Compiled loops on purpose: the pre-bound closures hoist the
    # ``tracer is None`` check to poll entry, so this gate verifies the
    # hoisted guard placement stays (nearly) free, not just the
    # interpreted per-site guards.
    rig = make_e1000_rig(irq_mode="napi", compiled=True)
    rig.insmod()
    result = netperf_recv(rig, duration_s=DURATION_S, trace=trace)
    return result


def _bench_wall(fn, repeats=3):
    fn()  # warm-up
    best = float("inf")
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        if was_enabled:
            gc.enable()
    return out, best


def _guard_cost_ns(iterations=2_000_000):
    """Per-check wall cost of the exact disabled-path guard pattern."""
    class K:
        tracer = None

    kernel = K()
    t0 = time.perf_counter()
    for _ in range(iterations):
        tracer = kernel.tracer
        if tracer is not None:
            raise AssertionError("unreachable")
    elapsed = time.perf_counter() - t0
    # Subtract the bare-loop baseline so only the guard itself counts.
    t0 = time.perf_counter()
    for _ in range(iterations):
        pass
    baseline = time.perf_counter() - t0
    return max(0.0, (elapsed - baseline)) / iterations * 1e9


def test_trace_overhead(table_printer):
    untraced_res, untraced_wall = _bench_wall(lambda: _recv_once())
    traced_res, traced_wall = _bench_wall(lambda: _recv_once(trace=True))

    # Determinism: tracing must not change what the workload does.
    assert traced_res.packets == untraced_res.packets
    assert traced_res.duration_s == untraced_res.duration_s
    events = traced_res.trace_summary["events"]
    assert events > 0

    guard_ns = _guard_cost_ns()
    # Conservative: assume every emitted event paid GUARDS_PER_EVENT
    # disabled-path checks in the untraced run.
    disabled_cost_s = guard_ns * 1e-9 * events * GUARDS_PER_EVENT
    overhead = disabled_cost_s / untraced_wall
    enabled_ratio = traced_wall / untraced_wall

    table_printer(
        "trace overhead: netperf-recv e1000 (%.2g virtual s)" % DURATION_S,
        ["Path", "Wall s", "Events", "Overhead"],
        [
            ("untraced", "%.3f" % untraced_wall, "-", "-"),
            ("traced", "%.3f" % traced_wall, events,
             "%.2fx wall" % enabled_ratio),
            ("disabled guards", "%.6f" % disabled_cost_s,
             "%d x %d" % (events, GUARDS_PER_EVENT),
             "%.3f%% of untraced" % (100 * overhead)),
        ],
    )

    results = {}
    path = os.path.abspath(RESULT_PATH)
    if os.path.exists(path):
        try:
            with open(path) as fh:
                results = json.load(fh)
        except ValueError:
            results = {}
    results["netperf_recv_e1000"] = {
        "virtual_duration_s": DURATION_S,
        "untraced_wall_s": untraced_wall,
        "traced_wall_s": traced_wall,
        "traced_over_untraced": enabled_ratio,
        "events": events,
        "guard_cost_ns": guard_ns,
        "guards_per_event_bound": GUARDS_PER_EVENT,
        "disabled_guard_cost_s": disabled_cost_s,
        "disabled_overhead_fraction": overhead,
        "packets": traced_res.packets,
    }
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")

    assert overhead < MAX_DISABLED_OVERHEAD, (
        "disabled-path guard cost %.2f%% of untraced wall time (limit 3%%)"
        % (100 * overhead))
