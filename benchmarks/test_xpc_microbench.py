"""XPC fast-path microbenchmarks: wall-clock codec + crossing throughput.

Unlike the Table 3 benches (virtual time, deterministic), these measure
*real* wall-clock time of the reproduction's own hot path:

* encode/decode throughput of the compiled codec (cached field lists +
  precompiled ``struct.Struct`` runs) against the uncached per-field
  baseline (``MarshalCodec(compiled=False)``, the seed implementation,
  kept callable exactly for this ablation);
* kernel/user crossing throughput through a full ``XpcChannel.upcall``
  round trip, and the batched deferred-notification path against
  one-upcall-per-notification.

Results are written to ``BENCH_xpc.json`` in the repo root (see
EXPERIMENTS.md).  The asserted floor -- compiled codec at least 2x the
uncached baseline -- is the acceptance bar for the fast-path PR; in
practice the ratio is well above it.
"""

import gc
import json
import os
import time

from repro.core import (
    CStruct,
    DomainManager,
    I32,
    MarshalCodec,
    Ptr,
    Struct,
    TypeRegistry,
    U8,
    U16,
    U32,
    U64,
    Xpc,
    XpcChannel,
)
from repro.core.marshal import TO_USER
from repro.kernel import make_kernel

RESULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_xpc.json")


class mb_stats(CStruct):
    """Scalar-heavy payload, shaped like a NIC stats block."""

    FIELDS = [
        ("rx_packets", U64), ("tx_packets", U64),
        ("rx_bytes", U64), ("tx_bytes", U64),
        ("rx_errors", U32), ("tx_errors", U32),
        ("rx_dropped", U32), ("tx_dropped", U32),
        ("multicast", U32), ("collisions", U32),
        ("rx_length_errors", U16), ("rx_over_errors", U16),
        ("rx_crc_errors", U16), ("rx_frame_errors", U16),
        ("link_speed", U16), ("link_duplex", U8),
        ("flags", U32), ("itr", I32),
    ]


class mb_ring(CStruct):
    """Mixed payload: scalars plus linked structure."""

    FIELDS = [
        ("head", U32), ("tail", U32), ("count", U32),
        ("stats", Struct(mb_stats)),
        ("next", Ptr("mb_ring")),
    ]


def _bench(fn, *, repeats=3):
    """Best-of-N wall-clock seconds for fn() (one timed run each).

    GC is paused around each timed run: when this bench runs after the
    table benches, the heap holds hundreds of thousands of survivor
    objects and collection pauses would land on whichever codec is
    unlucky.
    """
    return _bench_pair(fn, None, repeats=repeats)[0]


def _bench_pair(fn_a, fn_b, *, repeats=3):
    """Best-of-N for two competing functions, measured *interleaved*.

    A/B/A/B within the same seconds, so machine-speed drift (thermal
    throttling, background load) hits both sides equally instead of
    skewing whichever happened to run during the slow minute.
    """
    fn_a()  # warm-up: fill codec caches outside the timed region
    if fn_b is not None:
        fn_b()
    best_a = best_b = float("inf")
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn_a()
            best_a = min(best_a, time.perf_counter() - t0)
            if fn_b is not None:
                t0 = time.perf_counter()
                fn_b()
                best_b = min(best_b, time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best_a, best_b


def _make_obj():
    obj = mb_ring(head=17, tail=900, count=4096)
    obj.next = mb_ring(head=1, tail=2, count=3)
    stats = obj.stats
    for i, (name, _f) in enumerate(
            (f.name, f) for f in mb_stats.fields()):
        setattr(stats, name, i * 1021 + 7)
    return obj


def _codec_roundtrips(codec, obj, n):
    def run():
        for _ in range(n):
            data = codec.encode(obj, mb_ring, TO_USER)
            codec.decode(data, mb_ring, TO_USER)
    return run


def test_codec_wallclock_speedup(table_printer):
    """Compiled codec must beat the uncached baseline by >= 2x."""
    n = 3000
    obj = _make_obj()
    registry = TypeRegistry()
    fast = MarshalCodec(type_ids=registry)
    slow = MarshalCodec(type_ids=registry, compiled=False)

    # Byte-identity first: the speedup must not come from doing less.
    assert fast.encode(obj, mb_ring, TO_USER) == \
        slow.encode(obj, mb_ring, TO_USER)

    t_fast, t_slow = _bench_pair(
        _codec_roundtrips(fast, obj, n),
        _codec_roundtrips(slow, obj, n),
        repeats=5,
    )
    speedup = t_slow / t_fast

    per_rt_fast_us = 1e6 * t_fast / n
    per_rt_slow_us = 1e6 * t_slow / n
    table_printer(
        "XPC codec wall-clock (encode+decode round trip, %d iters)" % n,
        ["Codec", "Total s", "Per-RT us", "Speedup"],
        [
            ("uncached baseline", "%.3f" % t_slow,
             "%.1f" % per_rt_slow_us, "1.00x"),
            ("compiled", "%.3f" % t_fast,
             "%.1f" % per_rt_fast_us, "%.2fx" % speedup),
        ],
    )
    _merge_results({
        "codec": {
            "iterations": n,
            "baseline_s": t_slow,
            "compiled_s": t_fast,
            "baseline_per_roundtrip_us": per_rt_slow_us,
            "compiled_per_roundtrip_us": per_rt_fast_us,
            "speedup": speedup,
        }
    })
    assert speedup >= 2.0, "compiled codec only %.2fx baseline" % speedup


def test_crossing_throughput(table_printer):
    """Wall-clock upcalls/second through the full channel round trip."""
    n = 2000
    kernel = make_kernel()
    channel = XpcChannel(Xpc(kernel), DomainManager())
    obj = _make_obj()
    channel.kernel_tracker.register(obj)
    channel.kernel_tracker.register(obj.next)

    def run():
        for _ in range(n):
            channel.upcall(lambda twin: 0, args=[(obj, mb_ring)])

    elapsed = _bench(run, repeats=2)
    per_sec = n / elapsed
    table_printer(
        "XPC crossing throughput (full upcall round trips)",
        ["Crossings", "Wall s", "Crossings/s", "us/crossing"],
        [(n, "%.3f" % elapsed, "%.0f" % per_sec,
          "%.1f" % (1e6 * elapsed / n))],
    )
    _merge_results({
        "crossings": {
            "count": n,
            "wall_s": elapsed,
            "per_second": per_sec,
        }
    })
    assert per_sec > 100  # smoke floor: anything sane is thousands


def test_deferred_batching_vs_individual_upcalls(table_printer):
    """Virtual-time cost of N notifications: batched flush vs upcalls."""
    n = 64

    def notif(twin):
        return 0

    # Individual upcalls.
    kernel = make_kernel()
    channel = XpcChannel(Xpc(kernel), DomainManager())
    obj = _make_obj()
    channel.kernel_tracker.register(obj)
    channel.kernel_tracker.register(obj.next)
    t0 = kernel.now_ns()
    for _ in range(n):
        channel.upcall(notif, args=[(obj, mb_ring)])
    individual_ns = kernel.now_ns() - t0
    individual_crossings = channel.xpc.kernel_user_crossings

    # One deferred batch (distinct funcs so nothing coalesces away).
    kernel = make_kernel()
    channel = XpcChannel(Xpc(kernel), DomainManager())
    obj = _make_obj()
    channel.kernel_tracker.register(obj)
    channel.kernel_tracker.register(obj.next)
    t0 = kernel.now_ns()
    for i in range(n):
        channel.defer(lambda twin, i=i: 0, args=[(obj, mb_ring)])
    channel.flush_deferred()
    batched_ns = kernel.now_ns() - t0
    batched_crossings = channel.xpc.kernel_user_crossings

    ratio = individual_ns / max(1, batched_ns)
    table_printer(
        "Deferred batching: %d one-way notifications" % n,
        ["Path", "Virtual ms", "Crossings", "Speedup"],
        [
            ("one upcall each", "%.2f" % (individual_ns / 1e6),
             individual_crossings, "1.00x"),
            ("deferred batch", "%.2f" % (batched_ns / 1e6),
             batched_crossings, "%.2fx" % ratio),
        ],
    )
    _merge_results({
        "deferred": {
            "notifications": n,
            "individual_virtual_ns": individual_ns,
            "batched_virtual_ns": batched_ns,
            "individual_crossings": individual_crossings,
            "batched_crossings": batched_crossings,
            "speedup": ratio,
        }
    })
    assert batched_crossings == 1
    assert individual_crossings == n
    assert ratio > 5  # batching amortizes the crossing + dispatch cost


def _merge_results(update):
    """Accumulate sections into BENCH_xpc.json across the three tests."""
    path = os.path.abspath(RESULT_PATH)
    results = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                results = json.load(fh)
        except ValueError:
            results = {}
    results.update(update)
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
