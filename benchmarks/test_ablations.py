"""Ablations for the design choices DESIGN.md calls out.

Each ablation removes one mechanism of the Decaf architecture and
measures what it bought:

* object tracker -> object identity and update-in-place;
* selective marshaling -> bytes per crossing;
* combolocks -> kernel-path locking cost;
* direct cross-language calls -> scalar-call overhead vs full XPC.
"""

from repro.core import (
    CStruct,
    DomainManager,
    FieldAccess,
    MarshalCodec,
    Str,
    U32,
    Xpc,
    XpcChannel,
)
from repro.core.combolock import ComboLock
from repro.core.marshal import MarshalPlan, TO_USER
from repro.drivers.legacy.e1000_main import e1000_adapter
from repro.kernel import SpinLock, make_kernel


class abl_struct(CStruct):
    FIELDS = [("a", U32), ("b", U32), ("name", Str(32)),
              ("c", U32), ("d", U32)]


def test_ablation_object_tracker(benchmark, table_printer):
    """Without the tracker, every transfer allocates a fresh copy and
    identity is lost; kernel-side updates no longer reach the object
    user code holds."""
    kernel = make_kernel()
    channel = XpcChannel(Xpc(kernel), DomainManager())
    obj = abl_struct(a=1)
    channel.kernel_tracker.register(obj)

    def with_tracker():
        twins = []
        for _ in range(50):
            channel.upcall(lambda t: twins.append(t),
                           args=[(obj, abl_struct)])
        return twins

    twins = benchmark.pedantic(with_tracker, iterations=1, rounds=1)
    with_identity = len({id(t) for t in twins})

    # Ablated: decode with a tracker-less context allocates per call.
    # (Hold the objects so CPython cannot reuse their ids.)
    codec = MarshalCodec()
    data = codec.encode(obj, abl_struct, TO_USER)
    ablated = [codec.decode(data, abl_struct, TO_USER) for _ in range(50)]
    no_tracker_twins = {id(t) for t in ablated}

    table_printer(
        "Ablation: object tracker",
        ["Configuration", "Distinct user objects for one kernel object"],
        [("with tracker", with_identity),
         ("without tracker", len(no_tracker_twins))],
    )
    assert with_identity == 1
    assert len(no_tracker_twins) == 50


def test_ablation_selective_marshal(benchmark, table_printer):
    """Selective-field marshaling vs whole-struct: bytes and fields per
    crossing for the real e1000_adapter with the slicer's plan."""
    from repro.drivers.decaf.plumbing import slice_plan

    adapter = e1000_adapter()
    adapter.config_space = [0] * 64

    plan = slice_plan("e1000")
    full_codec = MarshalCodec(MarshalPlan())   # everything crosses
    selective_codec = MarshalCodec(plan)

    def encode_both():
        full = full_codec.encode(adapter, e1000_adapter, TO_USER)
        selective = selective_codec.encode(adapter, e1000_adapter, TO_USER)
        return len(full), len(selective)

    full_bytes, selective_bytes = benchmark(encode_both)
    table_printer(
        "Ablation: selective-field marshaling (e1000_adapter)",
        ["Configuration", "Bytes per kernel->user transfer"],
        [("whole struct", full_bytes),
         ("driver-accessed fields only", selective_bytes)],
    )
    assert selective_bytes < full_bytes


def test_ablation_combolock(benchmark, table_printer):
    """Combolock vs always-semaphore on the kernel data path: the
    spinlock mode keeps per-acquisition cost near a plain spinlock;
    a semaphore-only design pays a scheduling charge per acquisition."""
    kernel = make_kernel()
    dm = DomainManager()
    combo = ComboLock(kernel, dm, "c")
    spin = SpinLock(kernel, "s")

    def kernel_path(lock_acquire, lock_release, n=200):
        start = kernel.cpu.busy_ns
        for _ in range(n):
            lock_acquire()
            lock_release()
        return kernel.cpu.busy_ns - start

    combo_cost = kernel_path(combo.acquire, combo.release)
    spin_cost = kernel_path(spin.lock, spin.unlock)

    # Ablated: always-semaphore (user-mode acquisition semantics).
    from repro.core.domains import DECAF

    def semaphore_path(n=200):
        start = kernel.cpu.busy_ns
        with dm.entered(DECAF):
            for _ in range(n):
                combo.acquire()
                combo.release()
        return kernel.cpu.busy_ns - start

    sem_cost = benchmark.pedantic(semaphore_path, iterations=1, rounds=1)
    table_printer(
        "Ablation: combolock (cost of 200 kernel-path acquisitions)",
        ["Configuration", "busy ns"],
        [("plain spinlock", spin_cost),
         ("combolock (kernel mode)", combo_cost),
         ("always-semaphore (ablated)", sem_cost)],
    )
    assert combo_cost <= spin_cost + 1000  # spinlock-equivalent
    assert sem_cost > 10 * max(1, combo_cost)


def test_ablation_direct_vs_xpc(benchmark, table_printer):
    """Direct cross-language calls for scalar arguments vs full XPC
    (section 3.1.1): the reason the architecture has both."""
    kernel = make_kernel()
    channel = XpcChannel(Xpc(kernel), DomainManager())
    obj = abl_struct()
    channel.kernel_tracker.register(obj)

    def run():
        t0 = kernel.now_ns()
        for _ in range(100):
            channel.direct_call(lambda x: x, 1)
        direct_ns = kernel.now_ns() - t0
        t0 = kernel.now_ns()
        for _ in range(100):
            channel.upcall(lambda t: 0, args=[(obj, abl_struct)])
        xpc_ns = kernel.now_ns() - t0
        return direct_ns, xpc_ns

    direct_ns, xpc_ns = benchmark.pedantic(run, iterations=1, rounds=1)
    table_printer(
        "Ablation: direct language call vs XPC (100 calls, virtual ns)",
        ["Mechanism", "virtual ns", "per call (us)"],
        [("direct C<->Java call", direct_ns, direct_ns / 100 / 1000),
         ("full XPC upcall", xpc_ns, xpc_ns / 100 / 1000)],
    )
    assert direct_ns * 10 < xpc_ns
