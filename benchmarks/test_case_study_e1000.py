"""Section 5.1 case study: benefits of writing E1000 in Java.

Paper numbers:

* 92 functions rewritten to use checked exceptions;
* 28 cases of ignored or mishandled error codes found;
* 675 lines (~8%) removed from e1000_hw.c by exception conversion;
* 6.5 KB of code removed by turning hw accessors into a class;
* parameter checking rewritten as a base class + two derived classes
  using hash tables for set membership.

The bench runs the error-handling analysis on our legacy E1000 and
compares the decaf conversion, printing paper-vs-measured.  Absolute
counts scale with driver size (ours is ~8x smaller than 14 kLoC).
"""

from repro.analysis import (
    analyze_error_handling,
    count_exception_usage,
    count_module_loc,
)
from repro.drivers.decaf import e1000_decaf, e1000_hw_decaf, e1000_param_decaf
from repro.drivers.legacy import (
    e1000_ethtool,
    e1000_hw,
    e1000_main,
    e1000_param,
)


def run_case_study():
    legacy_modules = [e1000_main, e1000_hw, e1000_param, e1000_ethtool]
    decaf_modules = [e1000_decaf, e1000_hw_decaf, e1000_param_decaf]
    report = analyze_error_handling(legacy_modules)
    exc_functions, exc_classes = count_exception_usage(decaf_modules)
    legacy_hw_loc = count_module_loc("repro.drivers.legacy.e1000_hw")
    decaf_hw_loc = count_module_loc("repro.drivers.decaf.e1000_hw_decaf")
    return report, exc_functions, exc_classes, legacy_hw_loc, decaf_hw_loc


def test_case_study_error_handling(benchmark, table_printer):
    (report, exc_functions, exc_classes,
     legacy_hw_loc, decaf_hw_loc) = benchmark.pedantic(
        run_case_study, iterations=1, rounds=1)

    saved = legacy_hw_loc - decaf_hw_loc
    table_printer(
        "Section 5.1 case study (paper vs reproduction)",
        ["Metric", "Paper", "Reproduction"],
        [
            ("Functions using exceptions", 92, exc_functions),
            ("Ignored/mishandled error cases", 28, report.ignored_count),
            ("Chip-layer LoC before", "8,437 (e1000_hw.c)", legacy_hw_loc),
            ("Chip-layer LoC after", "-675 (-8%)",
             "%d (-%d, -%.0f%%)" % (decaf_hw_loc, saved,
                                    100 * saved / legacy_hw_loc)),
            ("Error-plumbing lines in chip layer", "~675",
             report.propagation_by_module["e1000_hw"]),
            ("Exception classes used", "E1000HWException et al.",
             ", ".join(sorted(exc_classes))),
        ],
    )

    # Shape assertions.
    assert report.ignored_count >= 10       # scaled-down 28
    assert exc_functions >= 10              # scaled-down 92
    assert decaf_hw_loc < legacy_hw_loc     # exception conversion shrinks
    # The chip layer's error-plumbing share is the big one (paper: 8%
    # of the file; plumbing here counts if+return pairs).
    frac = report.propagation_fraction("e1000_hw")
    assert 0.05 < frac < 0.35
    benchmark.extra_info["ignored"] = report.ignored_count


def test_case_study_param_classes(benchmark, table_printer):
    """The parameter-checking class hierarchy: base + two derived,
    set membership via hash sets (paper's 'Java hash tables')."""
    from repro.drivers.decaf.e1000_param_decaf import (
        ListOption,
        Option,
        RangeOption,
    )

    def check():
        assert issubclass(RangeOption, Option)
        assert issubclass(ListOption, Option)
        assert isinstance(ListOption("x", 0, (1, 2, 3)).valid, frozenset)
        return True

    assert benchmark(check)
    table_printer(
        "Parameter checking (section 5.1)",
        ["Metric", "Paper", "Reproduction"],
        [
            ("Class hierarchy", "base + 2 derived",
             "Option + RangeOption/ListOption"),
            ("Set membership", "Java hash tables", "frozenset"),
        ],
    )


def test_case_study_hw_class_removes_parameter_passing(benchmark,
                                                       table_printer):
    """Rewriting hw accessors as a class removes the hw parameter from
    every internal call (paper: 6.5 KB of code)."""
    import inspect

    def measure():
        legacy_src = inspect.getsource(e1000_hw)
        decaf_src = inspect.getsource(e1000_hw_decaf)
        legacy_hw_params = legacy_src.count("(hw")
        decaf_hw_params = decaf_src.count("(hw")
        return legacy_hw_params, decaf_hw_params

    legacy_count, decaf_count = benchmark(measure)
    table_printer(
        "hw-parameter plumbing (section 5.1)",
        ["Metric", "Legacy", "Decaf class"],
        [("'(hw...' parameter occurrences", legacy_count, decaf_count)],
    )
    assert decaf_count < legacy_count / 3
