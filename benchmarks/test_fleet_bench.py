"""Fleet scale: a mixed hotplug fleet under one kernel.

One ``make_kernel(nr_cpus=4)`` hosts N device instances spread over
five families (e1000, rtl8139, uhci, ens1371, psmouse), half of them
decaf drivers with supervised user halves.  The harness interleaves
per-device traffic with hotplug churn (remove -> re-probe waves) and
fleet-wide fault injection, then reports sustained event throughput,
bytes of simulator memory per device, and the recovery-latency
distribution.

Acceptance (ISSUE 9):

* device-model work dominates: >= 60% of profiled CPU time lands in
  ``repro/devices/`` + the compiled fastpaths, i.e. harness overhead
  stays a minority cost at N=1024;
* >= 99% of injected faults recover, with p50/p99 outage latency
  recorded (outage = JVM restart + full driver re-init replay, so the
  p99 lands near 2s of *virtual* time -- that is the paper's recovery
  model, not harness slack).

Results go to ``BENCH_fleet.json``.  The full N=1024 run takes a few
wall minutes; CI smoke shrinks it via ``FLEET_BENCH_DEVICES``.
"""

import json
import os

from repro.fleet import FleetHarness, FleetSpec

RESULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_fleet.json")

N_DEVICES = int(os.environ.get("FLEET_BENCH_DEVICES", "1024"))
DURATION_MS = int(os.environ.get("FLEET_BENCH_DURATION_MS", "200"))

MIN_DEVICE_MODEL_FRACTION = 0.60
MIN_RECOVERY_RATE = 0.99


def test_fleet_bench(table_printer):
    spec = FleetSpec(n_devices=N_DEVICES, decaf_fraction=0.5, nr_cpus=4,
                     duration_ms=DURATION_MS, fault_period_ms=10,
                     seed=1234)
    harness = FleetHarness(spec)
    harness.measure_build()
    harness.run()
    harness.profile_run()
    result = harness.result()
    harness.teardown()

    # Teardown must leave the shared kernel empty: a fleet that can't
    # unwind cleanly would leak across the churn waves too.
    kernel = harness.kernel
    assert len(kernel.net.devices) == 0
    assert len(kernel.usb.devices) == 0
    assert len(kernel.sound.cards) == 0
    assert len(kernel.input.devices) == 0
    assert len(kernel.modules.loaded) == 0

    buckets = result.extra["profile_buckets"]
    table_printer(
        "fleet: %d mixed devices, %d CPUs, churn + faults"
        % (N_DEVICES, spec.nr_cpus),
        ["Metric", "Value"],
        [
            ("devices (decaf/legacy)", "%d/%d" % (
                result.extra["decaf_slots"], result.extra["legacy_slots"])),
            ("events/s sustained", "%.0f" % result.events_per_sec),
            ("sim bytes/device", "%.0f" % result.mem_bytes_per_device),
            ("churn cycles", result.churn_cycles),
            ("probes/removes", "%d/%d" % (
                result.extra["probes"], result.extra["removes"])),
            ("faults -> recoveries", "%d -> %d" % (
                result.faults_injected, result.recoveries)),
            ("recovery rate", "%.3f" % result.recovery_rate),
            ("recovery p50/p99 ms", "%.0f/%.0f" % (
                result.recovery_p50_ms, result.recovery_p99_ms)),
            ("device-model fraction", "%.3f" % result.device_model_fraction),
            ("wall s", "%.1f" % result.extra["wall_elapsed_s"]),
        ],
    )

    payload = {
        "config": {
            "n_devices": N_DEVICES,
            "duration_ms": DURATION_MS,
            "nr_cpus": spec.nr_cpus,
            "decaf_fraction": spec.decaf_fraction,
            "seed": spec.seed,
        },
        "events_per_sec": result.events_per_sec,
        "mem_bytes_per_device": result.mem_bytes_per_device,
        "churn_cycles": result.churn_cycles,
        "probes": result.extra["probes"],
        "removes": result.extra["removes"],
        "faults_injected": result.faults_injected,
        "recoveries": result.recoveries,
        "recovery_rate": result.recovery_rate,
        "recovery_p50_ms": result.recovery_p50_ms,
        "recovery_p99_ms": result.recovery_p99_ms,
        "device_model_fraction": result.device_model_fraction,
        "profile_buckets": buckets,
        "packets": result.packets,
        "kernel_user_crossings": result.kernel_user_crossings,
        "wall_elapsed_s": result.extra["wall_elapsed_s"],
    }
    with open(os.path.abspath(RESULT_PATH), "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    assert result.events_per_sec > 0
    assert result.mem_bytes_per_device > 0
    assert result.churn_cycles > 0
    assert result.faults_injected > 0, "no fault ever met a crossing"
    assert result.recovery_rate >= MIN_RECOVERY_RATE, (
        "only %.3f of injected faults recovered" % result.recovery_rate)
    assert result.recovery_p99_ms > 0
    assert result.device_model_fraction >= MIN_DEVICE_MODEL_FRACTION, (
        "harness overhead dominates: device-model fraction %.3f "
        "(buckets: %r)" % (result.device_model_fraction, buckets))
