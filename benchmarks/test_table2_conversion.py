"""Table 2: the drivers converted to the Decaf architecture.

Paper:

    Driver    Type     LoC    Ann.  Nucleus       Library      Decaf
    8139too   Network  1,916   17   12f/389       16f/292      25f/541
    E1000     Network  14,204  64   46f/1715      0f/0         236f/7804
    ens1371   Sound    2,165   18   6f/140        0f/0         59f/1049
    uhci-hcd  USB 1.0  2,339   94   68f/1537      12f/287      3f/188
    psmouse   Mouse    2,448   17   15f/501       74f/1310     14f/192

The bench runs the full DriverSlicer pipeline on our five drivers and
prints the same row structure.  Absolute counts differ (our drivers
are Python-dense); the asserted shape: annotations touch <2% of driver
source on average, most functions leave the kernel for four drivers,
and uhci-hcd stays kernel-heavy.
"""

from repro.slicer import DRIVER_CONFIGS, conversion_report

PAPER = {
    "8139too": dict(loc=1916, ann=17, nucleus=(12, 389), library=(16, 292),
                    decaf=(25, 541)),
    "e1000": dict(loc=14204, ann=64, nucleus=(46, 1715), library=(0, 0),
                  decaf=(236, 7804)),
    "ens1371": dict(loc=2165, ann=18, nucleus=(6, 140), library=(0, 0),
                    decaf=(59, 1049)),
    "uhci_hcd": dict(loc=2339, ann=94, nucleus=(68, 1537), library=(12, 287),
                     decaf=(3, 188)),
    "psmouse": dict(loc=2448, ann=17, nucleus=(15, 501), library=(74, 1310),
                    decaf=(14, 192)),
}

# Which of our user-partition functions stayed in the driver library
# (the paper's E1000 library is empty; ours keeps the ring helpers).
LIBRARY_RESIDENT = {
    "e1000": set(),      # ring helpers live in a separate decaf lib module
    "8139too": set(),
    "ens1371": set(),
    "uhci_hcd": set(),
    "psmouse": set(),
}


def run_all_reports():
    return {
        name: conversion_report(config)
        for name, config in DRIVER_CONFIGS.items()
    }


def test_table2_conversion(benchmark, table_printer):
    reports = benchmark.pedantic(run_all_reports, iterations=1, rounds=1)

    rows = []
    for name, report in reports.items():
        paper = PAPER[name]
        rows.append((
            name,
            "%d" % paper["loc"], "%d" % report["total_loc"],
            "%d" % paper["ann"], "%d" % report["annotations"],
            "%df/%d" % paper["nucleus"],
            "%df/%d" % (report["nucleus_funcs"], report["nucleus_loc"]),
            "%df/%d" % paper["decaf"],
            "%df/%d" % (report["decaf_funcs"] + report["library_funcs"],
                        report["decaf_loc"] + report["library_loc"]),
        ))
    table_printer(
        "Table 2: converted drivers (paper vs reproduction)",
        ["Driver", "LoC(p)", "LoC(r)", "Ann(p)", "Ann(r)",
         "Nucleus(p)", "Nucleus(r)", "User(p)", "User(r)"],
        rows,
    )

    # Shape assertions.
    fractions = {
        name: report["user_fraction"] for name, report in reports.items()
    }
    # Paper: >75% of functions moved for 4 of 5 drivers; uhci is the
    # exception.  Our partition shows the same: uhci lowest by far.
    non_uhci = [f for n, f in fractions.items() if n != "uhci_hcd"]
    assert min(non_uhci) > 0.55
    assert fractions["uhci_hcd"] == min(fractions.values())

    # Annotations touch a small fraction of the driver source (<2% avg
    # in the paper; allow a little slack for our denser sources).
    ann_fraction = [
        reports[n]["annotations"] / reports[n]["total_loc"]
        for n in reports
    ]
    assert sum(ann_fraction) / len(ann_fraction) < 0.04

    # E1000 is the biggest driver and has the most annotations, as in
    # the paper.
    assert reports["e1000"]["total_loc"] == max(
        r["total_loc"] for r in reports.values())
