"""Benchmark harness helpers: paper-vs-measured table printing."""

import pytest


def print_table(title, headers, rows):
    """Print an aligned comparison table to stdout."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print()
    print("=" * len(line))
    print(title)
    print("=" * len(line))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()


@pytest.fixture
def table_printer():
    return print_table
