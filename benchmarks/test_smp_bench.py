"""SMP scaling: multi-queue e1000 receive across 1/2/4/8 virtual CPUs.

Fixed work, fixed topology: the device always runs 8 RX queues and the
RSS hash always spreads the same 8 flows the same way; only the number
of virtual CPUs the per-queue NAPI contexts are affined to changes.
Every run therefore delivers the byte-identical per-queue packet
streams (asserted via per-queue sha256 digests) -- what changes is how
much of the per-packet receive-stack work overlaps in virtual time.

The whole workload is injected up front (delivery to the ring and the
pending overflow list advances no virtual time), then the kernel runs
until every frame reaches the sink.  The virtual *drain* time of that
fixed backlog is the scaling metric: on one CPU all 8 NAPI contexts
serialize; on N CPUs their softirq work overlaps in the busy-window
model, so drain time should fall ~1/N until queues outnumber CPUs.

Results go to ``BENCH_smp.json``.  Acceptance: >= 3.0x from 1 to 4
CPUs with identical digests everywhere.
"""

import hashlib
import json
import os
import struct
import time
import zlib

from repro.workloads.rigs import make_e1000_rig

RESULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_smp.json")

NUM_QUEUES = 8
FRAME_BYTES = 1500
CPU_COUNTS = (1, 2, 4, 8)

# Frames per queue per run; CI smoke can shrink it.
FRAMES_PER_QUEUE = int(os.environ.get("SMP_BENCH_FRAMES", "400"))


def _flow_tags():
    """One 8-byte flow key per queue.

    The device steers on ``crc32(frame[12:20]) % num_queues`` (the
    ethertype + start-of-payload window, its simplified RSS input);
    search the integers for one key per queue.  Deterministic, and
    independent of the CPU count by construction.
    """
    tags = {}
    n = 0
    while len(tags) < NUM_QUEUES:
        key = struct.pack(">Q", n)
        q = zlib.crc32(key) % NUM_QUEUES
        if q not in tags:
            tags[q] = key
        n += 1
    return [tags[q] for q in range(NUM_QUEUES)]


def _build_frames():
    """The fixed workload: queues interleaved round-robin, sequenced.

    Byte 20 carries the queue id (so the sink needn't rehash) and bytes
    21-24 the per-flow sequence number (so digests detect reordering or
    loss within a queue, not just miscounts).
    """
    tags = _flow_tags()
    frames = []
    for i in range(FRAMES_PER_QUEUE):
        seq = struct.pack(">I", i)
        for q in range(NUM_QUEUES):
            head = b"\x00" * 12 + tags[q] + bytes([q]) + seq
            frames.append(head + b"\x00" * (FRAME_BYTES - len(head)))
    return frames


def _run_once(nr_cpus, frames):
    rig = make_e1000_rig(irq_mode="napi", nr_cpus=nr_cpus,
                         num_queues=NUM_QUEUES,
                         rx_pending_cap=FRAMES_PER_QUEUE + 64)
    rig.insmod()
    kernel = rig.kernel
    dev = rig.netdev()
    ret = kernel.net.dev_open(dev)
    assert ret == 0, "dev_open failed: %d" % ret
    kernel.run_for_ms(50)  # autoneg + first watchdog

    digests = [hashlib.sha256() for _ in range(NUM_QUEUES)]
    counts = [0] * NUM_QUEUES
    received = [0]

    def sink(_dev, skb):
        data = skb.data
        q = data[20]
        digests[q].update(data)
        counts[q] += 1
        received[0] += 1

    kernel.net.rx_sink = sink
    kernel.cpu.start_window()
    for vcpu in kernel.cpus:
        vcpu.acct.start_window()

    inject = rig.link.inject
    for frame in frames:
        inject(frame)
    total = len(frames)
    start_ns = kernel.clock.now_ns
    wall0 = time.perf_counter()
    while received[0] < total:
        t = kernel.events.peek_time()
        assert t is not None, (
            "drain wedged at %d/%d frames" % (received[0], total))
        kernel.run_until(t)
    wall_s = time.perf_counter() - wall0
    # Targeted events defer their CPU charge into the owning CPU's busy
    # window, so the final sink call can run at a clock time earlier
    # than the work it stands for.  The backlog is cleared only when
    # the last CPU's window closes.
    end_ns = max([kernel.clock.now_ns]
                 + [vcpu.busy_until_ns for vcpu in kernel.cpus])
    drain_ns = end_ns - start_ns

    nic = rig.device
    run = {
        "nr_cpus": nr_cpus,
        "packets": received[0],
        "per_queue_counts": list(counts),
        "per_queue_digests": [d.hexdigest() for d in digests],
        "rx_queue_frames": list(nic.rx_queue_frames),
        "virtual_drain_ms": drain_ns / 1e6,
        "wall_s": wall_s,
        "pkts_per_virtual_s": received[0] / (drain_ns / 1e9),
        "per_cpu_busy_ms": [vcpu.acct.window_busy_ns() / 1e6
                            for vcpu in kernel.cpus],
    }
    kernel.net.rx_sink = None
    kernel.net.dev_close(dev)
    rig.rmmod()
    return run


def test_smp_recv_scaling(table_printer):
    frames = _build_frames()
    total = len(frames)
    runs = [_run_once(n, frames) for n in CPU_COUNTS]

    base = runs[0]
    for run in runs:
        # Nothing dropped, every queue saw its exact flow.
        assert run["packets"] == total, run
        assert run["per_queue_counts"] == [FRAMES_PER_QUEUE] * NUM_QUEUES
        assert run["rx_queue_frames"] == base["rx_queue_frames"]
        # Byte-identical per-queue delivery at every CPU count.
        assert run["per_queue_digests"] == base["per_queue_digests"], (
            "per-queue payloads differ between 1 and %d CPUs"
            % run["nr_cpus"])

    by_cpus = {run["nr_cpus"]: run for run in runs}
    scaling = {
        "1_to_%d" % n: by_cpus[1]["virtual_drain_ms"]
                       / by_cpus[n]["virtual_drain_ms"]
        for n in CPU_COUNTS if n > 1
    }

    table_printer(
        "netperf-recv scaling: e1000 x8 queues, %d frames"  % total,
        ["CPUs", "Drain ms (virt)", "Scaling", "Pkts/s (virt)",
         "CPU busy ms (each)"],
        [
            (run["nr_cpus"], "%.3f" % run["virtual_drain_ms"],
             "%.2fx" % (base["virtual_drain_ms"] / run["virtual_drain_ms"]),
             "%.0f" % run["pkts_per_virtual_s"],
             "/".join("%.1f" % b for b in run["per_cpu_busy_ms"]))
            for run in runs
        ],
    )

    results = {
        "topology": {
            "num_queues": NUM_QUEUES,
            "frames_per_queue": FRAMES_PER_QUEUE,
            "frame_bytes": FRAME_BYTES,
            "cpu_counts": list(CPU_COUNTS),
        },
        "runs": {str(run["nr_cpus"]): run for run in runs},
        "scaling": scaling,
        "digests_identical_across_cpu_counts": True,
    }
    with open(os.path.abspath(RESULT_PATH), "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")

    assert scaling["1_to_4"] >= 3.0, (
        "only %.2fx scaling from 1 to 4 CPUs" % scaling["1_to_4"])
    # 8 queues on 8 CPUs must not collapse back toward serial.
    assert scaling["1_to_8"] > scaling["1_to_4"]
