"""Table 1: lines of code supporting Decaf Drivers.

Paper (non-comment LoC):

    Runtime support
      Jeannie helpers            1,976
      XPC in Decaf runtime       2,673
      XPC in Nuclear runtime     4,661
    DriverSlicer
      CIL OCaml                 12,465
      Python scripts             1,276
      XDR compilers                372
    Total                       23,423

Our reproduction reports its analogous components.  Absolute sizes
differ (Python vs OCaml/C/Java, and a simulator substrate); the shape
claim is that the runtime is "comparable to a moderately sized driver"
and the slicer's static analysis dominates the tooling.
"""

from repro.analysis import infrastructure_loc_report

PAPER_ROWS = {
    "Runtime support": {
        "Jeannie helpers": 1976,
        "XPC in Decaf runtime": 2673,
        "XPC in Nuclear runtime": 4661,
    },
    "DriverSlicer": {
        "CIL OCaml": 12465,
        "Python scripts": 1276,
        "XDR compilers": 372,
    },
}
PAPER_TOTAL = 23423


def test_table1_infrastructure_loc(benchmark, table_printer):
    report = benchmark(infrastructure_loc_report)

    rows = []
    for section, paper_rows in PAPER_ROWS.items():
        ours = report[section]
        for (paper_name, paper_loc), (our_name, our_loc) in zip(
            paper_rows.items(), ours.items()
        ):
            rows.append((section, paper_name, paper_loc, our_name, our_loc))
    rows.append(("Total", "", PAPER_TOTAL, "", report["total"]))
    table_printer(
        "Table 1: Decaf infrastructure size (paper vs reproduction)",
        ["Section", "Paper component", "Paper LoC",
         "Our component", "Our LoC"],
        rows,
    )

    # Shape assertions.
    runtime_total = sum(report["Runtime support"].values())
    slicer_total = sum(report["DriverSlicer"].values())
    assert runtime_total > 500          # a moderately sized driver
    assert slicer_total > 400
    # Static analysis is the biggest slicer piece, as CIL is in the paper.
    slicer = report["DriverSlicer"]
    analysis = slicer["Static analysis (CIL OCaml analogue)"]
    assert analysis >= slicer["XDR compilers"]
    benchmark.extra_info["total_loc"] = report["total"]
