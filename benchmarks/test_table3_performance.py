"""Table 3: performance of Decaf Drivers on common workloads.

Paper:

    Driver   Workload       Rel.  CPU nat  CPU dec  Init nat  Init dec  Cross
    8139too  netperf-send   1.00  14%      13%      0.02 s    1.02 s    40
             netperf-recv   1.00  17%      15%      --        --        --
    E1000    netperf-send   0.99  2.8%     3.7%     0.42 s    4.87 s    91
             netperf-recv   1.00  20%      21%      --        --        --
    ens1371  mpg123         --    0.0%     0.1%     1.12 s    6.34 s    237
    uhci-hcd tar            1.03  0.1%     0.1%     1.32 s    2.67 s    49
    psmouse  move-and-click --    0.1%     0.1%     0.04 s    0.40 s    24

Plus, in text: E1000 UDP 1-byte send/recv throughput equal to native
with slightly higher CPU; ens1371's decaf driver called 15 times during
playback; the E1000 watchdog runs in the decaf driver every 2 s.

The bench runs every workload on both stacks in virtual time and
prints the same rows.  Asserted shape: steady-state relative
performance within a few percent of 1.0, CPU utilization close between
stacks, decaf init latency a multiple of native, and decaf-invocation
counts ~0 during data-path workloads.
"""

import pytest

from repro.workloads import (
    make_8139too_rig,
    make_e1000_rig,
    make_ens1371_rig,
    make_psmouse_rig,
    make_uhci_rig,
    move_and_click,
    mpg123_play,
    netperf_recv,
    netperf_send,
    netperf_udp_rr,
    tar_to_flash,
)

PAPER = [
    ("8139too", "netperf-send", "1.00", "14%", "13%", "0.02", "1.02", "40"),
    ("8139too", "netperf-recv", "1.00", "17%", "15%", "-", "-", "-"),
    ("e1000", "netperf-send", "0.99", "2.8%", "3.7%", "0.42", "4.87", "91"),
    ("e1000", "netperf-recv", "1.00", "20%", "21%", "-", "-", "-"),
    ("ens1371", "mpg123", "-", "0.0%", "0.1%", "1.12", "6.34", "237"),
    ("uhci_hcd", "tar", "1.03", "0.1%", "0.1%", "1.32", "2.67", "49"),
    ("psmouse", "move-and-click", "-", "0.1%", "0.1%", "0.04", "0.40", "24"),
]


def _run_pair(make_rig, workload, metric="throughput_mbps", **kwargs):
    """Run one workload on native and decaf rigs; returns result pair."""
    results = {}
    for decaf in (False, True):
        rig = make_rig(decaf=decaf)
        rig.insmod()
        results[decaf] = workload(rig, **kwargs)
        results[decaf].extra["rig"] = rig
    return results


def run_table3():
    measurements = []

    pair = _run_pair(make_8139too_rig, netperf_send, duration_s=1.0)
    measurements.append(("8139too", "netperf-send", pair, "throughput"))
    pair = _run_pair(make_8139too_rig, netperf_recv, duration_s=1.0)
    measurements.append(("8139too", "netperf-recv", pair, "throughput"))

    pair = _run_pair(make_e1000_rig, netperf_send, duration_s=1.0)
    measurements.append(("e1000", "netperf-send", pair, "throughput"))
    pair = _run_pair(make_e1000_rig, netperf_recv, duration_s=1.0)
    measurements.append(("e1000", "netperf-recv", pair, "throughput"))

    pair = _run_pair(make_ens1371_rig, mpg123_play, duration_s=5.0)
    measurements.append(("ens1371", "mpg123", pair, None))

    pair = _run_pair(make_uhci_rig, tar_to_flash,
                     archive_bytes=512 * 1024)
    measurements.append(("uhci_hcd", "tar", pair, "duration"))

    pair = _run_pair(make_psmouse_rig, move_and_click, duration_s=15.0)
    measurements.append(("psmouse", "move-and-click", pair, None))
    return measurements


def _relative(pair, kind):
    native, decaf = pair[False], pair[True]
    if kind == "throughput":
        return decaf.throughput_mbps / max(1e-9, native.throughput_mbps)
    if kind == "duration":
        # Longer duration = slower; relative performance as paper
        # reports it (>1 means decaf took longer).
        return decaf.duration_s / max(1e-9, native.duration_s)
    return None


def test_table3_performance(benchmark, table_printer):
    measurements = benchmark.pedantic(run_table3, iterations=1, rounds=1)

    rows = []
    paper_by_key = {(p[0], p[1]): p for p in PAPER}
    for driver, workload, pair, kind in measurements:
        native, decaf = pair[False], pair[True]
        rel = _relative(pair, kind)
        paper = paper_by_key[(driver, workload)]
        rows.append((
            driver, workload,
            paper[2], ("%.2f" % rel) if rel else "-",
            paper[3], "%.1f%%" % (100 * native.cpu_utilization),
            paper[4], "%.1f%%" % (100 * decaf.cpu_utilization),
            paper[5], "%.2f" % native.init_latency_s,
            paper[6], "%.2f" % decaf.init_latency_s,
            paper[7], "%d" % decaf.kernel_user_crossings,
            "%d/%d" % (decaf.deferred_calls, decaf.deferred_flushes),
        ))
    table_printer(
        "Table 3: workload performance (paper vs reproduction; "
        "p=paper, r=reproduction; Defer = notifications/batches)",
        ["Driver", "Workload", "Rel(p)", "Rel(r)", "CPUn(p)", "CPUn(r)",
         "CPUd(p)", "CPUd(r)", "Init-n(p)", "Init-n(r)", "Init-d(p)",
         "Init-d(r)", "Cross(p)", "Cross(r)", "Defer(r)"],
        rows,
    )

    for driver, workload, pair, kind in measurements:
        native, decaf = pair[False], pair[True]
        rel = _relative(pair, kind)
        if rel is not None:
            # Steady-state within a few percent of native.
            assert 0.97 <= rel <= 1.05, (driver, workload, rel)
        # CPU utilization comparable (within 2 percentage points or 2x).
        assert abs(decaf.cpu_utilization - native.cpu_utilization) < 0.05, \
            (driver, workload)
        # Decaf init latency is a multiple of native's.
        assert decaf.init_latency_s > 2 * native.init_latency_s, driver

    # Ordering of decaf init latency: the two chatty-init drivers
    # (e1000, ens1371) are the slowest, as in the paper.
    init = {driver: pair[True].init_latency_s
            for driver, _w, pair, _k in measurements}
    slowest_two = sorted(init, key=init.get, reverse=True)[:2]
    assert set(slowest_two) <= {"e1000", "ens1371", "psmouse"}

    benchmark.extra_info["rows"] = len(rows)


def test_table3_e1000_udp(benchmark, table_printer):
    """Section 4.2's UDP 1-byte experiment: same transaction rate,
    slightly higher CPU for the decaf driver."""

    def run():
        results = {}
        for decaf in (False, True):
            rig = make_e1000_rig(decaf=decaf)
            rig.insmod()
            results[decaf] = netperf_udp_rr(rig, duration_s=0.5)
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    native, decaf = results[False], results[True]
    table_printer(
        "E1000 UDP 1-byte request/response (section 4.2)",
        ["Variant", "Transactions", "CPU"],
        [
            ("native", native.extra["transactions"],
             "%.2f%%" % (100 * native.cpu_utilization)),
            ("decaf", decaf.extra["transactions"],
             "%.2f%%" % (100 * decaf.cpu_utilization)),
        ],
    )
    ratio = decaf.extra["transactions"] / native.extra["transactions"]
    assert ratio > 0.98  # same throughput
    assert decaf.cpu_utilization >= native.cpu_utilization * 0.95


def test_table3_decaf_invocations(benchmark, table_printer):
    """Section 4.2's invocation counts: ens1371's decaf driver runs
    only at playback start/end; the E1000 watchdog every 2 s; the other
    workloads never invoke the decaf driver."""

    def run():
        out = {}
        rig = make_ens1371_rig(decaf=True)
        rig.insmod()
        out["ens1371"] = mpg123_play(rig, duration_s=4.0).decaf_invocations
        rig = make_e1000_rig(decaf=True)
        rig.insmod()
        out["e1000"] = netperf_send(rig, duration_s=4.0).decaf_invocations
        rig = make_uhci_rig(decaf=True)
        rig.insmod()
        out["uhci"] = tar_to_flash(
            rig, archive_bytes=256 * 1024).decaf_invocations
        rig = make_psmouse_rig(decaf=True)
        rig.insmod()
        out["psmouse"] = move_and_click(rig, duration_s=4.0).decaf_invocations
        return out

    counts = benchmark.pedantic(run, iterations=1, rounds=1)
    table_printer(
        "Decaf-driver invocations during workloads (paper: ens1371=15, "
        "e1000=watchdog/2s, others=0)",
        ["Driver", "Invocations"],
        sorted(counts.items()),
    )
    assert 4 <= counts["ens1371"] <= 20      # start/end only (paper: 15)
    assert 1 <= counts["e1000"] <= 6         # watchdog every 2 s over ~4 s
    assert counts["uhci"] == 0
    assert counts["psmouse"] == 0
