"""Health-plane overhead: always-on must be (almost) free.

The contract pinned here (see DESIGN.md "Health plane"):

* **Always-on** (kstat + flight recorder + watchdogs installed): under
  1% of the hottest workload's wall time.  kstat is pull-only and the
  flight recorder is fed from cold paths, so the only recurring cost
  is the periodic watchdog check -- ~100 events per virtual second.
* **Sampler enabled** (opt-in profiler at the default 1 ms virtual
  period): under 5%.  Adds one tick event per period plus a
  tracer-style ``prof = kernel.profiler`` guard + list push/pop at
  each instrumented dispatch site.

Both bounds are asserted *analytically* -- measured per-operation
microcosts times counted operations, over the measured baseline wall
time -- so the gate holds independent of machine-to-machine noise.
Wall-clock ratios of interleaved best-of-N runs are reported alongside
(not asserted).  Results for both NICs merge into ``BENCH_health.json``.
"""

import gc
import json
import os
import time

from repro.workloads.netperf import netperf_recv
from repro.workloads.rigs import make_8139too_rig, make_e1000_rig

RESULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_health.json")

DURATION_S = float(os.environ.get("HEALTH_BENCH_SECONDS", "0.1"))

MAX_ALWAYS_ON_OVERHEAD = 0.01
MAX_SAMPLER_OVERHEAD = 0.05

# Conservative bound on profiler guard/push/pop executions per hot
# operation (irq dispatch, NAPI poll, timer/work callback, upcall).
FRAMES_PER_OP = 2

RIGS = {
    "e1000": lambda health: make_e1000_rig(irq_mode="napi", compiled=True,
                                           health=health),
    "rtl8139": lambda health: make_8139too_rig(irq_mode="napi",
                                               compiled=True,
                                               health=health),
}


def _recv_once(nic, health=False, profile=False):
    rig = RIGS[nic](health)
    rig.insmod()
    if profile:
        rig.kernel.health.start_profiler()
    result = netperf_recv(rig, duration_s=DURATION_S)
    return result, rig


def _bench_wall(fn, repeats=3):
    fn()  # warm-up
    best = float("inf")
    out = None
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        if was_enabled:
            gc.enable()
    return out, best


def _per_call_ns(fn, iterations):
    """Best-effort per-call wall cost of ``fn``, baseline-subtracted."""
    fn()  # warm-up
    t0 = time.perf_counter()
    for _ in range(iterations):
        fn()
    elapsed = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(iterations):
        pass
    baseline = time.perf_counter() - t0
    return max(0.0, elapsed - baseline) / iterations * 1e9


def _watchdog_check_cost_ns(rig, iterations=20_000):
    """Wall cost of one real watchdog check on this rig's state."""
    watchdog = rig.kernel.health.watchdog
    watchdog.disarm()
    watchdog.armed = True          # run the full check body...
    watchdog._schedule = lambda: None   # ...without re-scheduling
    try:
        return _per_call_ns(watchdog._check, iterations)
    finally:
        watchdog.armed = False


def _profiler_tick_cost_ns(rig, iterations=20_000):
    prof = rig.kernel.health.profiler
    saved = rig.kernel.events.schedule_after
    rig.kernel.events.schedule_after = lambda *a, **k: None
    try:
        return _per_call_ns(prof._tick, iterations)
    finally:
        rig.kernel.events.schedule_after = saved


def _frame_cost_ns(rig, iterations=200_000):
    """Guard + push/pop pair at one instrumented dispatch site."""
    kernel = rig.kernel
    prof_obj = kernel.health.profiler

    def one_site():
        prof = kernel.profiler
        if prof is not None:
            prof.push("bench")
            prof.pop()

    assert prof_obj is not None
    return _per_call_ns(one_site, iterations)


def _hot_ops(kernel):
    """Count of hot-path dispatches that carry a profiler guard."""
    snap = kernel.kstat.snapshot()
    return int(snap.get("irq.delivered", 0) + snap.get("napi.polls", 0)
               + snap.get("napi.softirq_runs", 0))


def test_health_overhead(table_printer):
    results = {}
    rows = []
    for nic in RIGS:
        (base_res, _), base_wall = _bench_wall(lambda: _recv_once(nic))
        (on_res, on_rig), on_wall = _bench_wall(
            lambda: _recv_once(nic, health=True))
        (prof_res, prof_rig), prof_wall = _bench_wall(
            lambda: _recv_once(nic, health=True, profile=True))

        # Determinism: observing the run must not change it.
        assert on_res.packets == base_res.packets
        assert prof_res.packets == base_res.packets
        assert on_res.health_summary["watchdog_fires"] == {
            "soft_lockup": 0, "hung_task": 0, "xpc_pending": 0}
        profile = prof_res.health_summary["profile"]
        assert profile["samples"] > 0

        # Analytic always-on bound: the watchdog check is the only
        # recurring cost (kstat pulls nothing, flight is cold-fed).
        checks = on_res.health_summary["kstat"]["health.watchdog.checks"]
        check_ns = _watchdog_check_cost_ns(on_rig)
        always_on_cost_s = checks * check_ns * 1e-9
        always_on_overhead = always_on_cost_s / base_wall

        # Analytic sampler bound: tick cost x ticks, plus a frame
        # guard/push/pop at each hot dispatch.
        ticks = profile["samples"]
        tick_ns = _profiler_tick_cost_ns(prof_rig)
        frame_ns = _frame_cost_ns(prof_rig)
        ops = _hot_ops(prof_rig.kernel)
        sampler_cost_s = (ticks * tick_ns
                          + ops * FRAMES_PER_OP * frame_ns) * 1e-9
        sampler_overhead = (always_on_cost_s + sampler_cost_s) / base_wall

        rows += [
            (nic, "baseline", "%.3f" % base_wall, "-"),
            (nic, "health on", "%.3f" % on_wall,
             "%.3f%% analytic" % (100 * always_on_overhead)),
            (nic, "+ sampler", "%.3f" % prof_wall,
             "%.3f%% analytic" % (100 * sampler_overhead)),
        ]

        results["netperf_recv_%s" % nic] = {
            "virtual_duration_s": DURATION_S,
            "baseline_wall_s": base_wall,
            "health_wall_s": on_wall,
            "profiled_wall_s": prof_wall,
            "health_over_baseline": on_wall / base_wall,
            "profiled_over_baseline": prof_wall / base_wall,
            "watchdog_checks": checks,
            "watchdog_check_cost_ns": check_ns,
            "always_on_overhead_fraction": always_on_overhead,
            "profiler_samples": ticks,
            "profiler_tick_cost_ns": tick_ns,
            "frame_cost_ns": frame_ns,
            "hot_ops": ops,
            "sampler_overhead_fraction": sampler_overhead,
            "packets": base_res.packets,
        }

        assert always_on_overhead < MAX_ALWAYS_ON_OVERHEAD, (
            "%s: always-on health cost %.3f%% of baseline (limit 1%%)"
            % (nic, 100 * always_on_overhead))
        assert sampler_overhead < MAX_SAMPLER_OVERHEAD, (
            "%s: sampler-enabled cost %.3f%% of baseline (limit 5%%)"
            % (nic, 100 * sampler_overhead))

    table_printer(
        "health-plane overhead: netperf-recv (%.2g virtual s)" % DURATION_S,
        ["NIC", "Config", "Wall s", "Overhead"],
        rows,
    )

    path = os.path.abspath(RESULT_PATH)
    merged = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                merged = json.load(fh)
        except ValueError:
            merged = {}
    merged.update(results)
    with open(path, "w") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True)
        fh.write("\n")
