"""Datapath ablation: per-packet interrupts vs NAPI-style polling.

Same workload (netperf-recv from a deterministic traffic generator),
same drivers, two interrupt schemes:

* ``irq_mode="irq"``  -- the seed path: one interrupt per packet (the
  E1000's ITR window is forced to 0), ``netif_rx`` with a fresh ``bytes``
  per packet;
* ``irq_mode="napi"`` -- one interrupt schedules a softirq poll that
  drains the ring under a budget, zero-copy pooled skbs, batched
  protocol-stack charging.

The virtual workload is byte-identical either way (asserted via a
payload digest), so the wall-clock ratio isolates the simulator's own
per-packet datapath cost -- the quantity NAPI exists to amortize.
Results go to ``BENCH_datapath.json``; virtual-time CPU utilization is
reported alongside, Table 3-style.
"""

import gc
import hashlib
import json
import os
import time

from repro.workloads.netperf import netperf_recv
from repro.workloads.rigs import make_8139too_rig, make_e1000_rig

RESULT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_datapath.json")

# Virtual seconds of receive per run; CI smoke can shrink it.
DURATION_S = float(os.environ.get("DATAPATH_BENCH_SECONDS", "0.2"))


def _recv_once(make_rig, irq_mode, burst=1):
    """One full run: fresh rig, insmod, netperf-recv with payload digest."""
    rig = make_rig(irq_mode=irq_mode)
    rig.insmod()
    digest = hashlib.sha256()

    update = digest.update

    def sink_extra(_dev, skb):
        # Hash while the (possibly pooled, zero-copy) view is valid;
        # hashlib takes the memoryview directly, no copy.
        update(skb.data)

    result = netperf_recv(rig, duration_s=DURATION_S, sink_extra=sink_extra,
                          burst=burst)
    return result, digest.hexdigest()


def _bench_pair(fn_a, fn_b, repeats=3):
    """Interleaved best-of-N wall-clock seconds for two competing runs."""
    out_a = fn_a()  # warm-up fills import/codec caches for both
    out_b = fn_b()
    best_a = best_b = float("inf")
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            ra = fn_a()
            best_a = min(best_a, time.perf_counter() - t0)
            t0 = time.perf_counter()
            rb = fn_b()
            best_b = min(best_b, time.perf_counter() - t0)
            # Determinism: every repeat reproduces the warm-up run.
            assert ra[1] == out_a[1], "irq-mode run is not deterministic"
            assert rb[1] == out_b[1], "napi-mode run is not deterministic"
    finally:
        if gc_was_enabled:
            gc.enable()
    return (out_a, best_a), (out_b, best_b)


def _section(result, digest, wall_s):
    return {
        "virtual_s": result.duration_s,
        "wall_s": wall_s,
        "packets": result.packets,
        "bytes": result.bytes_moved,
        "throughput_mbps": result.throughput_mbps,
        "cpu_utilization_pct": 100 * result.cpu_utilization,
        "wall_packets_per_sec": result.packets / wall_s,
        "napi_polls": result.napi_polls,
        "napi_budget_exhaustions": result.napi_budget_exhaustions,
        "napi_pkts_per_poll":
            {str(k): v for k, v in sorted(result.napi_pkts_per_poll.items())},
        "skb_pool_hit_rate": result.skb_pool_hit_rate,
        "payload_sha256": digest,
    }


def _run_ablation(make_rig, table_printer, title, burst=1):
    (irq_out, irq_wall), (napi_out, napi_wall) = _bench_pair(
        lambda: _recv_once(make_rig, "irq", burst=burst),
        lambda: _recv_once(make_rig, "napi", burst=burst),
    )
    irq_res, irq_digest = irq_out
    napi_res, napi_digest = napi_out

    # The ablation compares cost, never behaviour: both schemes must
    # deliver the identical packet stream to the identical sink.
    assert napi_digest == irq_digest, "payloads differ between modes"
    assert napi_res.packets == irq_res.packets

    irq_pps = irq_res.packets / irq_wall
    napi_pps = napi_res.packets / napi_wall
    speedup = napi_pps / irq_pps
    table_printer(
        title,
        ["Mode", "Pkts", "Wall s", "Pkts/s (wall)", "CPU% (virt)",
         "Polls", "Pool hit%"],
        [
            ("per-packet irq", irq_res.packets, "%.3f" % irq_wall,
             "%.0f" % irq_pps, "%.1f" % (100 * irq_res.cpu_utilization),
             irq_res.napi_polls, "-"),
            ("napi", napi_res.packets, "%.3f" % napi_wall,
             "%.0f" % napi_pps, "%.1f" % (100 * napi_res.cpu_utilization),
             napi_res.napi_polls,
             "%.1f" % (100 * napi_res.skb_pool_hit_rate)),
        ],
    )
    section = {
        "virtual_duration_s": DURATION_S,
        "irq": _section(irq_res, irq_digest, irq_wall),
        "napi": _section(napi_res, napi_digest, napi_wall),
        "wall_speedup": speedup,
        "payloads_identical": True,
    }
    return section, speedup, irq_res, napi_res


def test_e1000_recv_ablation(table_printer):
    """NAPI must receive >= 2x the packets per wall-clock second.

    Both schemes run with *interpreted* driver loops (``compiled=False``)
    -- the seed condition -- so this test isolates the interrupt-scheme
    axis.  The loop-compiler axis is gated separately below; with
    compiled loops the per-packet-irq path gets fast enough that the
    NAPI-batching win shrinks, which is the compiler working as
    intended, not NAPI regressing.
    """
    section, speedup, irq_res, napi_res = _run_ablation(
        lambda irq_mode: make_e1000_rig(irq_mode=irq_mode, compiled=False),
        table_printer,
        "netperf-recv ablation: e1000 @ 1G (%.2g virtual s)" % DURATION_S)
    _merge_results({"e1000_recv": section})

    # The polled path actually polled, batched, and reused buffers.
    assert napi_res.napi_polls > 0
    assert irq_res.napi_polls == 0
    assert napi_res.skb_pool_hit_rate > 0.99
    assert sum(napi_res.napi_pkts_per_poll.values()) == napi_res.napi_polls
    assert speedup >= 2.0, (
        "napi only %.2fx per-packet irq wall-clock pkts/s" % speedup)


def test_rtl8139_recv_ablation(table_printer):
    """100M chip under bursty arrivals (TCP windows / sender GRO).

    Both modes see the identical 8-frame bursts; the NAPI run
    additionally opens the chip's interrupt-coalescing window, so one
    interrupt schedules one poll that drains the whole burst.  At 100M
    the packet rate is ~12x lower than gigabit, so the win is smaller
    than e1000's, but NAPI must at least not lose to per-packet IRQs.
    """
    def make_rig(irq_mode):
        # Interpreted loops on both sides (seed condition); see the
        # e1000 ablation docstring for why the loop-compiler axis is
        # held fixed here.
        return make_8139too_rig(
            irq_mode=irq_mode, compiled=False,
            rx_coalesce_ns=100_000 if irq_mode == "napi" else 0)

    section, speedup, _irq_res, napi_res = _run_ablation(
        make_rig, table_printer,
        "netperf-recv ablation: rtl8139 @ 100M (%.2g virtual s)" % DURATION_S,
        burst=8)
    _merge_results({"rtl8139_recv": section})
    assert napi_res.napi_polls > 0
    # The burst actually batched: the median poll drains more than one
    # packet (the 0.67x regression came from 1-packet polls).
    assert max(napi_res.napi_pkts_per_poll) > 1
    assert speedup >= 1.0, (
        "napi only %.2fx per-packet irq wall-clock pkts/s" % speedup)


def _recv_once_cfg(make_rig, msg_bytes, burst):
    """One run of a fully-specified rig config with payload digest."""
    rig = make_rig()
    rig.insmod()
    digest = hashlib.sha256()
    update = digest.update

    def sink_extra(_dev, skb):
        update(skb.data)

    result = netperf_recv(rig, duration_s=DURATION_S, msg_bytes=msg_bytes,
                          sink_extra=sink_extra, burst=burst)
    return result, digest.hexdigest()


def _run_loop_ablation(make_rig, table_printer, title, msg_bytes, burst,
                       repeats=4):
    """Compiled loops vs the interpreted-loop ablation, same rig config.

    Identical interrupt scheme, identical virtual workload -- the only
    variable is whether the rx/tx ring loops run as pre-bound compiled
    closures or as the line-for-line interpreted originals.  The wall
    clock ratio is therefore the loop compiler's own win.
    """
    (interp_out, interp_wall), (comp_out, comp_wall) = _bench_pair(
        lambda: _recv_once_cfg(lambda: make_rig(False), msg_bytes, burst),
        lambda: _recv_once_cfg(lambda: make_rig(True), msg_bytes, burst),
        repeats=repeats,
    )
    interp_res, interp_digest = interp_out
    comp_res, comp_digest = comp_out

    # The compiled loops must be observably identical, byte for byte.
    assert comp_digest == interp_digest, (
        "payloads differ between loop modes")
    assert comp_res.packets == interp_res.packets

    interp_pps = interp_res.packets / interp_wall
    comp_pps = comp_res.packets / comp_wall
    speedup = comp_pps / interp_pps
    table_printer(
        title,
        ["Loops", "Pkts", "Wall s", "Pkts/s (wall)", "CPU% (virt)"],
        [
            ("interpreted", interp_res.packets, "%.3f" % interp_wall,
             "%.0f" % interp_pps,
             "%.1f" % (100 * interp_res.cpu_utilization)),
            ("compiled", comp_res.packets, "%.3f" % comp_wall,
             "%.0f" % comp_pps,
             "%.1f" % (100 * comp_res.cpu_utilization)),
        ],
    )
    section = {
        "virtual_duration_s": DURATION_S,
        "msg_bytes": msg_bytes,
        "burst": burst,
        "interpreted": _section(interp_res, interp_digest, interp_wall),
        "compiled": _section(comp_res, comp_digest, comp_wall),
        "wall_speedup": speedup,
        "payloads_identical": True,
    }
    return section, speedup


def test_e1000_compiled_loop_ablation(table_printer):
    """Compiled rx loops must be >= 2x interpreted wall-clock pkts/s.

    Measured on the per-packet-interrupt path (``e1000_clean_rx_irq``
    via ``netif_rx``): every packet pays the full ICR-read / stack
    charge / RDT hand-back sequence, which is where the interpreted
    access chain's cost lives.  Bursty gigabit arrivals (256-frame
    bursts of 256-byte frames) keep the event horizon far, so the
    compiled accessors stay on their memoized fast path.
    """
    section, speedup = _run_loop_ablation(
        lambda compiled: make_e1000_rig(irq_mode="irq", compiled=compiled),
        table_printer,
        "loop-compiler ablation: e1000 irq mode (%.2g virtual s)"
        % DURATION_S,
        msg_bytes=256, burst=256)
    _merge_results({"e1000_compiled": section})
    assert speedup >= 2.0, (
        "compiled loops only %.2fx interpreted wall-clock pkts/s" % speedup)


def test_rtl8139_compiled_loop_ablation(table_printer):
    """Compiled rtl8139 poll must be >= 2x interpreted pkts/s.

    NAPI mode with a wide-open coalescing window: one interrupt drains
    a whole 64-frame burst through ``rtl8139_rx``, so nearly all wall
    time sits in the poll loop the compiler pre-binds (CR reads, ring
    header decode, CAPR hand-back per packet).
    """
    section, speedup = _run_loop_ablation(
        lambda compiled: make_8139too_rig(
            irq_mode="napi", rx_coalesce_ns=400_000, compiled=compiled),
        table_printer,
        "loop-compiler ablation: rtl8139 napi mode (%.2g virtual s)"
        % DURATION_S,
        msg_bytes=256, burst=64)
    _merge_results({"rtl8139_compiled": section})
    assert speedup >= 2.0, (
        "compiled loops only %.2fx interpreted wall-clock pkts/s" % speedup)


def _merge_results(update):
    """Accumulate sections into BENCH_datapath.json across tests."""
    path = os.path.abspath(RESULT_PATH)
    results = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                results = json.load(fh)
        except ValueError:
            results = {}
    results.update(update)
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
